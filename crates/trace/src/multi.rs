//! Multi-stream fan-in: several [`RecordSource`]s merged into one
//! arrival-ordered, **stream-tagged** record flow.
//!
//! The multi-tenant scenarios of the paper's co-evaluation study replay
//! several independent workloads against one shared device. The input
//! side of that is this module: a [`MultiSource`] owns N per-stream
//! sources and yields [`TaggedRecord`]s — each record stamped with the
//! index of the stream it came from — merged by arrival time. Consumers
//! that need the per-stream identity (concurrent replay routing,
//! per-stream terminals) read the tag; consumers that only want the
//! merged trace use the plain [`RecordSource`] impl, which drops it.
//!
//! # Ordering contract
//!
//! Each stream must itself be **arrival-ordered** — exactly the order
//! every writer in this workspace produces and the same contract the
//! streamed replay has ([`RecordSource`] consumers that need order). A
//! stream yielding a record earlier than its predecessor is a
//! [`TraceError::InvalidRecord`] naming the stream; sort the file first
//! (load + rewrite) if it is genuinely unordered. The merge itself is
//! *stable*: on duplicate arrival timestamps the lower stream index wins,
//! and records within one stream never reorder — so merging is
//! deterministic, byte for byte, at any chunk size.
//!
//! Memory is bounded by one refill chunk per stream, never a whole trace.
//!
//! ```
//! use tt_trace::multi::MultiSource;
//! use tt_trace::source::VecSource;
//! use tt_trace::{BlockRecord, OpType, time::SimInstant};
//!
//! let rec = |us: u64, lba: u64| BlockRecord::new(SimInstant::from_usecs(us), lba, 8, OpType::Read);
//! let mut multi = MultiSource::new(vec![
//!     ("a".to_string(), Box::new(VecSource::new(vec![rec(10, 0), rec(30, 1)])) as _),
//!     ("b".to_string(), Box::new(VecSource::new(vec![rec(20, 2)])) as _),
//! ]);
//! let mut out = Vec::new();
//! multi.next_tagged(&mut out, 16)?;
//! let tags: Vec<u32> = out.iter().map(|t| t.stream).collect();
//! assert_eq!(tags, vec![0, 1, 0]);
//! # Ok::<(), tt_trace::TraceError>(())
//! ```

use crate::error::TraceError;
use crate::record::BlockRecord;
use crate::source::{ChunkCursor, RecordSource, DEFAULT_CHUNK};
use crate::time::SimInstant;

/// One record of a fan-in flow, stamped with its origin stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaggedRecord {
    /// Index of the stream this record came from (the order streams were
    /// handed to [`MultiSource::new`]).
    pub stream: u32,
    /// The record itself.
    pub record: BlockRecord,
}

/// Per-stream pull state: a chunked lookahead cursor plus the merge's
/// bookkeeping.
struct StreamState<'env> {
    name: String,
    cursor: ChunkCursor<Box<dyn RecordSource + 'env>>,
    /// Records this stream has yielded into the merge so far.
    yielded: usize,
    /// Arrival of the last merged record — the order check.
    last: Option<SimInstant>,
}

/// A fan-in over several record streams: arrival-ordered, stream-tagged
/// merge (see the module docs for the ordering contract).
pub struct MultiSource<'env> {
    streams: Vec<StreamState<'env>>,
    chunk: usize,
}

impl std::fmt::Debug for MultiSource<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.streams.iter().map(|s| s.name.as_str()).collect();
        f.debug_struct("MultiSource")
            .field("streams", &names)
            .field("chunk", &self.chunk)
            .finish()
    }
}

impl<'env> MultiSource<'env> {
    /// Builds a fan-in over `(name, source)` pairs; the position of each
    /// pair is its stream index (and its tie-break rank on duplicate
    /// arrivals). Names label streams in errors and per-stream outputs.
    #[must_use]
    pub fn new(streams: Vec<(String, Box<dyn RecordSource + 'env>)>) -> Self {
        MultiSource {
            streams: streams
                .into_iter()
                .map(|(name, source)| StreamState {
                    name,
                    cursor: ChunkCursor::new(source, DEFAULT_CHUNK),
                    yielded: 0,
                    last: None,
                })
                .collect(),
            chunk: DEFAULT_CHUNK,
        }
    }

    /// Sets the per-stream refill chunk (default
    /// [`DEFAULT_CHUNK`], clamped to ≥ 1).
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        for stream in &mut self.streams {
            stream.cursor.set_chunk(self.chunk);
        }
        self
    }

    /// Number of input streams.
    #[must_use]
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// The stream names, in stream-index order.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.streams.iter().map(|s| s.name.as_str()).collect()
    }

    /// Appends up to `max` merged, tagged records to `out`; returns the
    /// number appended, `0` when every stream is exhausted (mirroring
    /// [`RecordSource::next_chunk`]).
    ///
    /// # Errors
    ///
    /// Propagates per-stream source errors, and rejects a stream whose
    /// records are not arrival-ordered.
    pub fn next_tagged(
        &mut self,
        out: &mut Vec<TaggedRecord>,
        max: usize,
    ) -> Result<usize, TraceError> {
        let mut appended = 0;
        while appended < max {
            // The smallest head arrival wins; ties go to the lowest stream
            // index, keeping the merge stable and deterministic.
            let mut best: Option<(usize, SimInstant)> = None;
            for i in 0..self.streams.len() {
                if let Some(rec) = self.streams[i].cursor.peek()? {
                    let arrival = rec.arrival;
                    if best.is_none_or(|(_, t)| arrival < t) {
                        best = Some((i, arrival));
                    }
                }
            }
            let Some((i, arrival)) = best else {
                break;
            };
            let stream = &mut self.streams[i];
            if let Some(last) = stream.last {
                if arrival < last {
                    return Err(TraceError::invalid_record(
                        stream.yielded,
                        format!(
                            "stream {:?} is not arrival-ordered: {arrival} precedes {last} \
                             (sort the trace first)",
                            stream.name
                        ),
                    ));
                }
            }
            stream.last = Some(arrival);
            let Some(record) = stream.cursor.next_record()? else {
                // The peek above saw a record; a source that retracts it
                // mid-merge is misbehaving — surface that, don't abort.
                return Err(TraceError::parse(format!(
                    "stream {:?} retracted a peeked record",
                    stream.name
                )));
            };
            stream.yielded += 1;
            out.push(TaggedRecord {
                stream: i as u32,
                record,
            });
            appended += 1;
        }
        Ok(appended)
    }
}

impl RecordSource for MultiSource<'_> {
    fn next_chunk(&mut self, out: &mut Vec<BlockRecord>, max: usize) -> Result<usize, TraceError> {
        let mut tagged = Vec::with_capacity(max.min(self.chunk));
        let n = self.next_tagged(&mut tagged, max)?;
        out.extend(tagged.into_iter().map(|t| t.record));
        Ok(n)
    }

    fn source_name(&self) -> &str {
        "multi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpType;
    use crate::source::VecSource;

    fn rec(us: u64, lba: u64) -> BlockRecord {
        BlockRecord::new(SimInstant::from_usecs(us), lba, 8, OpType::Read)
    }

    fn multi(streams: Vec<Vec<BlockRecord>>) -> MultiSource<'static> {
        MultiSource::new(
            streams
                .into_iter()
                .enumerate()
                .map(|(i, recs)| {
                    (
                        format!("s{i}"),
                        Box::new(VecSource::new(recs)) as Box<dyn RecordSource>,
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn merges_by_arrival_across_streams() {
        let mut m = multi(vec![
            vec![rec(10, 0), rec(40, 1)],
            vec![rec(20, 2), rec(30, 3)],
        ]);
        let mut out = Vec::new();
        assert_eq!(m.next_tagged(&mut out, 16).unwrap(), 4);
        let order: Vec<(u32, u64)> = out.iter().map(|t| (t.stream, t.record.lba)).collect();
        assert_eq!(order, vec![(0, 0), (1, 2), (1, 3), (0, 1)]);
        assert_eq!(m.next_tagged(&mut out, 16).unwrap(), 0);
    }

    #[test]
    fn duplicate_arrivals_break_ties_by_stream_index() {
        let mut m = multi(vec![
            vec![rec(10, 10), rec(10, 11)],
            vec![rec(10, 20)],
            vec![rec(5, 30), rec(10, 31)],
        ]);
        let mut out = Vec::new();
        m.next_tagged(&mut out, 16).unwrap();
        let order: Vec<u64> = out.iter().map(|t| t.record.lba).collect();
        // 5us first; then all the 10us ties in stream-index order, with
        // stream 0's two records keeping their internal order.
        assert_eq!(order, vec![30, 10, 11, 20, 31]);
    }

    #[test]
    fn chunked_pulls_match_one_big_pull() {
        let streams = vec![
            (0..40u64).map(|i| rec(i * 3, i)).collect::<Vec<_>>(),
            (0..25u64).map(|i| rec(i * 5 + 1, 100 + i)).collect(),
            (0..10u64).map(|i| rec(i * 11, 200 + i)).collect(),
        ];
        let mut whole = Vec::new();
        multi(streams.clone())
            .next_tagged(&mut whole, 1000)
            .unwrap();

        for (chunk, pull) in [(1usize, 1usize), (3, 7), (64, 2)] {
            let mut m = multi(streams.clone()).with_chunk(chunk);
            let mut got = Vec::new();
            while m.next_tagged(&mut got, pull).unwrap() > 0 {}
            assert_eq!(got, whole, "chunk {chunk} pull {pull}");
        }
    }

    #[test]
    fn unordered_stream_is_rejected_by_name() {
        let mut m = multi(vec![vec![rec(10, 0)], vec![rec(50, 1), rec(20, 2)]]);
        let mut out = Vec::new();
        let err = m.next_tagged(&mut out, 16).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("s1"), "{msg}");
        assert!(msg.contains("arrival-ordered"), "{msg}");
    }

    #[test]
    fn record_source_impl_drops_tags() {
        let mut m = multi(vec![vec![rec(10, 0)], vec![rec(5, 1)]]);
        let mut out = Vec::new();
        assert_eq!(m.next_chunk(&mut out, 16).unwrap(), 2);
        assert_eq!(out[0].lba, 1);
        assert_eq!(out[1].lba, 0);
        assert_eq!(m.source_name(), "multi");
    }

    #[test]
    fn empty_and_single_stream_edges() {
        let mut none = multi(vec![]);
        let mut out = Vec::new();
        assert_eq!(none.next_tagged(&mut out, 8).unwrap(), 0);

        let mut one = multi(vec![vec![rec(1, 0), rec(2, 1)]]);
        let mut out = Vec::new();
        assert_eq!(one.next_tagged(&mut out, 8).unwrap(), 2);
        assert!(out.iter().all(|t| t.stream == 0));
    }
}
