//! Block I/O operation types.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::TraceError;

/// The direction of a block request.
///
/// The paper's inference model treats reads and writes separately throughout:
/// the device-time coefficients (`β` for reads, `η` for writes) and the
/// channel delays (`Tcdel_read`, `Tcdel_write`) are estimated per operation
/// type.
///
/// # Examples
///
/// ```
/// use tt_trace::OpType;
///
/// assert!(OpType::Read.is_read());
/// assert_eq!("W".parse::<OpType>().unwrap(), OpType::Write);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum OpType {
    /// A block read. The discriminant is fixed at the TTB on-disk op code
    /// so a validated byte column can be viewed as `&[OpType]` zero-copy.
    Read = 0,
    /// A block write (TTB op code 1; see [`OpType::Read`]).
    Write = 1,
}

impl OpType {
    /// Both operation types, in a fixed order (reads first).
    pub const ALL: [OpType; 2] = [OpType::Read, OpType::Write];

    /// `true` for [`OpType::Read`].
    #[must_use]
    pub const fn is_read(self) -> bool {
        matches!(self, OpType::Read)
    }

    /// `true` for [`OpType::Write`].
    #[must_use]
    pub const fn is_write(self) -> bool {
        matches!(self, OpType::Write)
    }

    /// Single-letter code used by the text formats (`R` / `W`).
    #[must_use]
    pub const fn code(self) -> char {
        match self {
            OpType::Read => 'R',
            OpType::Write => 'W',
        }
    }

    /// Reinterprets a byte slice as an op column without copying, or
    /// `None` if any byte is not a valid op code (0 = read, 1 = write) —
    /// the typed-view hook the zero-copy TTB mapping uses for the op
    /// column.
    ///
    /// Sound because `OpType` is `#[repr(u8)]` with exactly the
    /// discriminants 0 and 1, which the guard validates before the cast.
    #[must_use]
    pub fn slice_from_bytes(bytes: &[u8]) -> Option<&[OpType]> {
        if bytes.iter().any(|&b| b > 1) {
            return None;
        }
        // SAFETY: #[repr(u8)] gives OpType size/align 1, and every byte
        // was just checked to be a declared discriminant (0 or 1).
        Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<OpType>(), bytes.len()) })
    }
}

impl fmt::Display for OpType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpType::Read => f.write_str("read"),
            OpType::Write => f.write_str("write"),
        }
    }
}

impl FromStr for OpType {
    type Err = TraceError;

    /// Parses the single-letter codes (`R`/`W`, case-insensitive) and the
    /// full words (`read`/`write`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "R" | "r" | "read" | "Read" | "READ" => Ok(OpType::Read),
            "W" | "w" | "write" | "Write" | "WRITE" => Ok(OpType::Write),
            other => Err(TraceError::parse(format!("unknown op type: {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_codes_and_words() {
        for s in ["R", "r", "read", "READ"] {
            assert_eq!(s.parse::<OpType>().unwrap(), OpType::Read);
        }
        for s in ["W", "w", "write", "Write"] {
            assert_eq!(s.parse::<OpType>().unwrap(), OpType::Write);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!("flush".parse::<OpType>().is_err());
        assert!("".parse::<OpType>().is_err());
    }

    #[test]
    fn code_round_trips() {
        for op in OpType::ALL {
            assert_eq!(op.code().to_string().parse::<OpType>().unwrap(), op);
        }
    }

    #[test]
    fn predicates_are_exclusive() {
        assert!(OpType::Read.is_read() && !OpType::Read.is_write());
        assert!(OpType::Write.is_write() && !OpType::Write.is_read());
    }
}
