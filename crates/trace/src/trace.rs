//! The [`Trace`] container: an arrival-ordered sequence of block records,
//! stored columnar.

use std::fmt;
use std::sync::OnceLock;

use serde::json::Value;
use serde::{Deserialize, Serialize};

use crate::error::TraceError;
use crate::record::BlockRecord;
use crate::store::TraceStore;
use crate::time::{SimDuration, SimInstant};

/// Descriptive metadata attached to a trace.
///
/// # Examples
///
/// ```
/// use tt_trace::TraceMeta;
///
/// let meta = TraceMeta::named("msnfs").with_source("synthetic MSPS profile");
/// assert_eq!(meta.name, "msnfs");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Short workload name (e.g. `"msnfs"`, `"ikki"`).
    pub name: String,
    /// Free-form provenance (collection system, generator parameters, ...).
    pub source: String,
}

impl TraceMeta {
    /// Creates metadata with the given name and an empty source.
    #[must_use]
    pub fn named(name: impl Into<String>) -> Self {
        TraceMeta {
            name: name.into(),
            source: String::new(),
        }
    }

    /// Sets the provenance string, builder-style.
    #[must_use]
    pub fn with_source(mut self, source: impl Into<String>) -> Self {
        self.source = source.into();
        self
    }
}

/// An arrival-ordered block trace.
///
/// Records live in a columnar [`TraceStore`] (struct-of-arrays), so
/// whole-trace scans — grouping, statistics, serialisation — touch only the
/// columns they need. Row-shaped access ([`Trace::records`], [`Trace::get`],
/// [`Trace::iter`]) is preserved for compatibility through a lazily
/// materialised row cache; columnar consumers should prefer
/// [`Trace::columns`] and [`Trace::iter_records`], which never build it.
///
/// The container maintains one invariant: records are sorted by
/// [`BlockRecord::arrival`] (ties keep insertion order). Inter-arrival times —
/// the paper's `Tintt` — are therefore always non-negative.
///
/// `Tintt_i` is defined as the gap *following* record `i`
/// (`arrival[i+1] - arrival[i]`, paper §III): it is the window in which
/// record `i`'s service time and any subsequent idle period live, so it is
/// attributed to record `i`'s size and operation type during grouping.
///
/// # Examples
///
/// ```
/// use tt_trace::{BlockRecord, OpType, Trace, time::SimInstant};
///
/// let mut trace = Trace::new();
/// trace.push(BlockRecord::new(SimInstant::from_usecs(0), 0, 8, OpType::Read));
/// trace.push(BlockRecord::new(SimInstant::from_usecs(120), 8, 8, OpType::Read));
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.inter_arrival(0).unwrap().as_usecs_f64(), 120.0);
/// ```
#[derive(Debug, Default)]
pub struct Trace {
    meta: TraceMeta,
    store: TraceStore,
    /// Row materialisation of `store`, built on first legacy slice access.
    rows: OnceLock<Vec<BlockRecord>>,
}

impl Clone for Trace {
    /// Clones metadata and columns; the row cache is not carried over.
    fn clone(&self) -> Self {
        Trace {
            meta: self.meta.clone(),
            store: self.store.clone(),
            rows: OnceLock::new(),
        }
    }
}

impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.meta == other.meta && self.store == other.store
    }
}

impl Trace {
    /// Creates an empty, unnamed trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace with metadata.
    #[must_use]
    pub fn with_meta(meta: TraceMeta) -> Self {
        Trace {
            meta,
            store: TraceStore::new(),
            rows: OnceLock::new(),
        }
    }

    /// Builds a trace from records, sorting them stably by arrival time.
    ///
    /// Use this when assembling records from unordered sources; when records
    /// are already ordered this is O(n) verification plus no moves.
    #[must_use]
    pub fn from_records(meta: TraceMeta, records: Vec<BlockRecord>) -> Self {
        Trace::from_store(meta, TraceStore::from_records(records))
    }

    /// Builds a trace directly from a columnar store, sorting stably by
    /// arrival when needed.
    #[must_use]
    pub fn from_store(meta: TraceMeta, mut store: TraceStore) -> Self {
        store.sort_by_arrival();
        Trace {
            meta,
            store,
            rows: OnceLock::new(),
        }
    }

    /// Builds a trace from records that must already be arrival-ordered.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidRecord`] naming the first out-of-order
    /// record.
    pub fn try_from_ordered(
        meta: TraceMeta,
        records: Vec<BlockRecord>,
    ) -> Result<Self, TraceError> {
        for (i, pair) in records.windows(2).enumerate() {
            if pair[1].arrival < pair[0].arrival {
                return Err(TraceError::invalid_record(
                    i + 1,
                    format!(
                        "arrival {} precedes previous arrival {}",
                        pair[1].arrival, pair[0].arrival
                    ),
                ));
            }
        }
        Ok(Trace {
            meta,
            store: TraceStore::from_records(records),
            rows: OnceLock::new(),
        })
    }

    /// Appends a record.
    ///
    /// # Panics
    ///
    /// Panics if the record's arrival precedes the last record's arrival;
    /// use [`Trace::from_records`] for unordered input.
    pub fn push(&mut self, record: BlockRecord) {
        if let Some(&last) = self.store.arrivals().last() {
            assert!(
                record.arrival >= last,
                "record arrival {} precedes trace tail {last}",
                record.arrival,
            );
        }
        self.store.push(record);
        self.rows = OnceLock::new();
    }

    /// The trace metadata.
    #[must_use]
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Mutable access to the metadata (records stay guarded).
    pub fn meta_mut(&mut self) -> &mut TraceMeta {
        &mut self.meta
    }

    /// The columnar record store — the preferred access path for
    /// whole-trace scans.
    #[must_use]
    pub fn columns(&self) -> &TraceStore {
        &self.store
    }

    /// The borrowed-slice column view ([`TraceStore::view`]) — what the
    /// columnar analysis entry points (`GroupedTrace::build_columns`,
    /// `TraceStats::compute_columns`, `tt_core::infer_columns`) take, so
    /// they run identically off this trace or a memory-mapped `.ttb` file.
    #[must_use]
    pub fn view(&self) -> crate::store::Columns<'_> {
        self.store.view()
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` when the trace holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The records as an ordered slice.
    ///
    /// First use materialises a row cache from the columns (doubling the
    /// trace's memory); columnar consumers should prefer
    /// [`Trace::iter_records`] or [`Trace::columns`].
    #[must_use]
    pub fn records(&self) -> &[BlockRecord] {
        self.rows.get_or_init(|| self.store.materialize())
    }

    /// The record at `index`, if any (assembled from the columns).
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&BlockRecord> {
        self.records().get(index)
    }

    /// Iterates over records in arrival order (row-cache backed; prefer
    /// [`Trace::iter_records`] in new code).
    pub fn iter(&self) -> std::slice::Iter<'_, BlockRecord> {
        self.records().iter()
    }

    /// Iterates records by value, assembled from the columns without
    /// building the row cache.
    pub fn iter_records(&self) -> impl ExactSizeIterator<Item = BlockRecord> + '_ {
        self.store.iter()
    }

    /// Consumes the trace, returning its records.
    #[must_use]
    pub fn into_records(self) -> Vec<BlockRecord> {
        match self.rows.into_inner() {
            Some(rows) => rows,
            None => self.store.materialize(),
        }
    }

    /// Consumes the trace, returning its columnar store.
    #[must_use]
    pub fn into_store(self) -> TraceStore {
        self.store
    }

    /// The inter-arrival time following record `index`
    /// (`arrival[index+1] - arrival[index]`), or `None` for the last record.
    #[must_use]
    pub fn inter_arrival(&self, index: usize) -> Option<SimDuration> {
        let arrivals = self.store.arrivals();
        let a = arrivals.get(index)?;
        let b = arrivals.get(index + 1)?;
        Some(*b - *a)
    }

    /// Iterator over all `len() - 1` inter-arrival times, in order.
    ///
    /// # Examples
    ///
    /// ```
    /// use tt_trace::{BlockRecord, OpType, Trace, TraceMeta, time::SimInstant};
    ///
    /// let recs = (0..4)
    ///     .map(|i| BlockRecord::new(SimInstant::from_usecs(i * 10), 0, 8, OpType::Read))
    ///     .collect();
    /// let trace = Trace::from_records(TraceMeta::default(), recs);
    /// let gaps: Vec<_> = trace.inter_arrivals().collect();
    /// assert_eq!(gaps.len(), 3);
    /// assert!(gaps.iter().all(|g| g.as_usecs_f64() == 10.0));
    /// ```
    pub fn inter_arrivals(&self) -> impl Iterator<Item = SimDuration> + '_ {
        self.store.arrivals().windows(2).map(|w| w[1] - w[0])
    }

    /// Wall-clock span from first to last arrival; zero for traces with
    /// fewer than two records.
    #[must_use]
    pub fn span(&self) -> SimDuration {
        let arrivals = self.store.arrivals();
        match (arrivals.first(), arrivals.last()) {
            (Some(&first), Some(&last)) => last - first,
            _ => SimDuration::ZERO,
        }
    }

    /// First arrival timestamp, if any.
    #[must_use]
    pub fn start(&self) -> Option<SimInstant> {
        self.store.arrivals().first().copied()
    }

    /// Last arrival timestamp, if any.
    #[must_use]
    pub fn end(&self) -> Option<SimInstant> {
        self.store.arrivals().last().copied()
    }

    /// `true` when every record carries device-side timing — the paper's
    /// "`Tsdev`-known" trace class (MSPS/MSRC-style collections).
    #[must_use]
    pub fn has_device_timing(&self) -> bool {
        self.store.all_timed()
    }

    /// Returns a copy whose arrival clock starts at zero (and shifts any
    /// device timing along), preserving every gap.
    #[must_use]
    pub fn rebased(&self) -> Trace {
        let Some(start) = self.start() else {
            return self.clone();
        };
        let offset = start - SimInstant::ZERO;
        let store = self
            .store
            .iter()
            .map(|mut r| {
                r.arrival = r.arrival - offset;
                if let Some(t) = &mut r.timing {
                    t.issue = t.issue - offset;
                    t.complete = t.complete - offset;
                }
                r
            })
            .collect();
        Trace {
            meta: self.meta.clone(),
            store,
            rows: OnceLock::new(),
        }
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace {:?}: {} records over {}",
            self.meta.name,
            self.store.len(),
            self.span()
        )
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a BlockRecord;
    type IntoIter = std::slice::Iter<'a, BlockRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records().iter()
    }
}

impl IntoIterator for Trace {
    type Item = BlockRecord;
    type IntoIter = std::vec::IntoIter<BlockRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.into_records().into_iter()
    }
}

impl FromIterator<BlockRecord> for Trace {
    /// Collects records into a trace, sorting by arrival.
    fn from_iter<I: IntoIterator<Item = BlockRecord>>(iter: I) -> Self {
        Trace::from_store(TraceMeta::default(), iter.into_iter().collect())
    }
}

impl Extend<BlockRecord> for Trace {
    /// Extends the trace, re-sorting if the new records break ordering.
    fn extend<I: IntoIterator<Item = BlockRecord>>(&mut self, iter: I) {
        self.store.extend(iter);
        self.store.sort_by_arrival();
        self.rows = OnceLock::new();
    }
}

/// Serialised as `{"meta": ..., "records": [...]}` — the shape the
/// previous row-based representation derived, so stored traces keep
/// parsing.
impl Serialize for Trace {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("meta".to_string(), self.meta.to_value()),
            (
                "records".to_string(),
                Value::Array(self.store.iter().map(|r| r.to_value()).collect()),
            ),
        ])
    }
}

impl Deserialize for Trace {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let meta = TraceMeta::from_value(v.get_field("meta"))?;
        let records = Vec::<BlockRecord>::from_value(v.get_field("records"))?;
        Ok(Trace {
            meta,
            store: TraceStore::from_records(records),
            rows: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpType;

    fn rec(us: u64) -> BlockRecord {
        BlockRecord::new(SimInstant::from_usecs(us), 0, 8, OpType::Read)
    }

    #[test]
    fn from_records_sorts() {
        let t = Trace::from_records(TraceMeta::default(), vec![rec(30), rec(10), rec(20)]);
        let arrivals: Vec<_> = t.iter().map(|r| r.arrival.as_nanos()).collect();
        assert_eq!(arrivals, vec![10_000, 20_000, 30_000]);
    }

    #[test]
    fn try_from_ordered_rejects_disorder() {
        let err = Trace::try_from_ordered(TraceMeta::default(), vec![rec(5), rec(3)]).unwrap_err();
        assert!(matches!(err, TraceError::InvalidRecord { index: 1, .. }));
    }

    #[test]
    #[should_panic(expected = "precedes trace tail")]
    fn push_rejects_backwards_time() {
        let mut t = Trace::new();
        t.push(rec(10));
        t.push(rec(5));
    }

    #[test]
    fn inter_arrivals_count_and_values() {
        let t = Trace::from_records(TraceMeta::default(), vec![rec(0), rec(7), rec(30)]);
        let gaps: Vec<_> = t.inter_arrivals().map(|d| d.as_usecs_f64()).collect();
        assert_eq!(gaps, vec![7.0, 23.0]);
        assert_eq!(t.inter_arrival(1).unwrap().as_usecs_f64(), 23.0);
        assert!(t.inter_arrival(2).is_none());
    }

    #[test]
    fn span_and_endpoints() {
        let t = Trace::from_records(TraceMeta::default(), vec![rec(5), rec(45)]);
        assert_eq!(t.span(), SimDuration::from_usecs(40));
        assert_eq!(t.start().unwrap(), SimInstant::from_usecs(5));
        assert_eq!(t.end().unwrap(), SimInstant::from_usecs(45));
        assert_eq!(Trace::new().span(), SimDuration::ZERO);
    }

    #[test]
    fn rebased_preserves_gaps() {
        let t = Trace::from_records(TraceMeta::default(), vec![rec(100), rec(130), rec(190)]);
        let r = t.rebased();
        assert_eq!(r.start().unwrap(), SimInstant::ZERO);
        let orig: Vec<_> = t.inter_arrivals().collect();
        let shifted: Vec<_> = r.inter_arrivals().collect();
        assert_eq!(orig, shifted);
    }

    #[test]
    fn has_device_timing_requires_all_records() {
        use crate::record::ServiceTiming;
        let mut t = Trace::new();
        assert!(!t.has_device_timing());
        t.push(rec(0).with_timing(ServiceTiming::new(
            SimInstant::from_usecs(0),
            SimInstant::from_usecs(1),
        )));
        assert!(t.has_device_timing());
        t.push(rec(10));
        assert!(!t.has_device_timing());
    }

    #[test]
    fn extend_resorts_when_needed() {
        let mut t = Trace::from_records(TraceMeta::default(), vec![rec(0), rec(20)]);
        t.extend(vec![rec(10)]);
        let arrivals: Vec<_> = t.iter().map(|r| r.arrival.as_nanos()).collect();
        assert_eq!(arrivals, vec![0, 10_000, 20_000]);
    }

    #[test]
    fn collects_from_iterator() {
        let t: Trace = vec![rec(3), rec(1)].into_iter().collect();
        assert_eq!(t.start().unwrap(), SimInstant::from_usecs(1));
    }

    #[test]
    fn row_cache_invalidated_on_mutation() {
        let mut t = Trace::from_records(TraceMeta::default(), vec![rec(0)]);
        assert_eq!(t.records().len(), 1); // materialise the cache
        t.push(rec(5));
        assert_eq!(t.records().len(), 2); // cache rebuilt after push
        t.extend(vec![rec(3)]);
        assert_eq!(t.records().len(), 3);
        assert_eq!(t.get(1).unwrap().arrival, SimInstant::from_usecs(3));
    }

    #[test]
    fn columnar_and_row_views_agree() {
        let t = Trace::from_records(TraceMeta::default(), vec![rec(4), rec(9), rec(2)]);
        let by_value: Vec<BlockRecord> = t.iter_records().collect();
        assert_eq!(by_value.as_slice(), t.records());
        assert_eq!(t.columns().len(), t.len());
    }
}
