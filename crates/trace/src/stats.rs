//! Whole-trace summary statistics (Table I style).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::group::{classify_columns, Sequentiality};
use crate::store::Columns;
use crate::time::SimDuration;
use crate::trace::Trace;

/// Aggregate statistics over one trace.
///
/// Mirrors the columns of the paper's Table I (average data size, total
/// size) plus the mix/locality features the workload generator is tuned
/// against.
///
/// # Examples
///
/// ```
/// use tt_trace::{BlockRecord, OpType, Trace, TraceMeta, TraceStats, time::SimInstant};
///
/// let recs = vec![
///     BlockRecord::new(SimInstant::from_usecs(0), 0, 8, OpType::Read),
///     BlockRecord::new(SimInstant::from_usecs(50), 8, 8, OpType::Write),
/// ];
/// let stats = TraceStats::compute(&Trace::from_records(TraceMeta::default(), recs));
/// assert_eq!(stats.requests, 2);
/// assert_eq!(stats.avg_size_kb, 4.0);
/// assert_eq!(stats.read_ratio, 0.5);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total number of requests.
    pub requests: usize,
    /// Number of reads.
    pub reads: usize,
    /// Number of writes.
    pub writes: usize,
    /// Fraction of requests that are reads (0 for an empty trace).
    pub read_ratio: f64,
    /// Fraction of requests classified sequential.
    pub sequential_ratio: f64,
    /// Mean request size in KiB.
    pub avg_size_kb: f64,
    /// Total data moved, in bytes.
    pub total_bytes: u64,
    /// Trace span (first arrival to last arrival).
    pub span: SimDuration,
    /// Mean inter-arrival time.
    pub mean_inter_arrival: SimDuration,
    /// Median inter-arrival time.
    pub median_inter_arrival: SimDuration,
    /// Maximum inter-arrival time.
    pub max_inter_arrival: SimDuration,
    /// Number of distinct request sizes observed.
    pub distinct_sizes: usize,
}

impl TraceStats {
    /// Computes statistics for `trace`. An empty trace yields all-zero
    /// statistics.
    ///
    /// Reads the columnar store directly — one pass over the op/size/LBA
    /// columns plus one sort of each of the gap and size columns.
    #[must_use]
    pub fn compute(trace: &Trace) -> Self {
        TraceStats::compute_columns(trace.view())
    }

    /// [`TraceStats::compute`] over a borrowed column view — identical
    /// output whether the columns come from an owned store or a
    /// memory-mapped `.ttb` file
    /// ([`MmapTrace`](crate::format::ttb::MmapTrace)).
    #[must_use]
    pub fn compute_columns(cols: Columns<'_>) -> Self {
        let n = cols.len();
        if n == 0 {
            return TraceStats::default();
        }

        let reads = cols.ops().iter().filter(|op| op.is_read()).count();
        let total_bytes: u64 = cols
            .sectors()
            .iter()
            .map(|&s| u64::from(s) * crate::record::SECTOR_BYTES)
            .sum();
        let seq = classify_columns(cols)
            .iter()
            .filter(|c| c.is_sequential())
            .count();

        let mut sizes: Vec<u32> = cols.sectors().to_vec();
        sizes.sort_unstable();
        sizes.dedup();

        let mut gaps: Vec<SimDuration> = cols.inter_arrivals().collect();
        gaps.sort_unstable();
        let (mean_gap, median_gap, max_gap) = if gaps.is_empty() {
            (SimDuration::ZERO, SimDuration::ZERO, SimDuration::ZERO)
        } else {
            let total: SimDuration = gaps.iter().copied().sum();
            (
                total / gaps.len() as u64,
                gaps[gaps.len() / 2],
                gaps.last().copied().unwrap_or(SimDuration::ZERO),
            )
        };

        TraceStats {
            requests: n,
            reads,
            writes: n - reads,
            read_ratio: reads as f64 / n as f64,
            sequential_ratio: seq as f64 / n as f64,
            avg_size_kb: total_bytes as f64 / 1024.0 / n as f64,
            total_bytes,
            span: cols.span(),
            mean_inter_arrival: mean_gap,
            median_inter_arrival: median_gap,
            max_inter_arrival: max_gap,
            distinct_sizes: sizes.len(),
        }
    }

    /// Total data moved in GiB (Table I's "Total size (GB)" column).
    #[must_use]
    pub fn total_gib(&self) -> f64 {
        self.total_bytes as f64 / (1024.0 * 1024.0 * 1024.0)
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reqs ({:.0}% read, {:.0}% seq), avg {:.2} KiB, span {}, mean Tintt {}",
            self.requests,
            self.read_ratio * 100.0,
            self.sequential_ratio * 100.0,
            self.avg_size_kb,
            self.span,
            self.mean_inter_arrival,
        )
    }
}

/// Ratio of sequential requests in `classes` (helper shared with reports).
#[must_use]
pub fn sequential_fraction(classes: &[Sequentiality]) -> f64 {
    if classes.is_empty() {
        return 0.0;
    }
    classes.iter().filter(|c| c.is_sequential()).count() as f64 / classes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpType;
    use crate::record::BlockRecord;
    use crate::time::SimInstant;
    use crate::trace::TraceMeta;

    fn rec(us: u64, lba: u64, sectors: u32, op: OpType) -> BlockRecord {
        BlockRecord::new(SimInstant::from_usecs(us), lba, sectors, op)
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = TraceStats::compute(&Trace::new());
        assert_eq!(s.requests, 0);
        assert_eq!(s.avg_size_kb, 0.0);
        assert_eq!(s.span, SimDuration::ZERO);
    }

    #[test]
    fn mix_and_sizes() {
        let t = Trace::from_records(
            TraceMeta::default(),
            vec![
                rec(0, 0, 8, OpType::Read),
                rec(10, 8, 8, OpType::Read),
                rec(20, 500, 16, OpType::Write),
                rec(50, 900, 32, OpType::Write),
            ],
        );
        let s = TraceStats::compute(&t);
        assert_eq!(s.requests, 4);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 2);
        assert_eq!(s.read_ratio, 0.5);
        assert_eq!(s.distinct_sizes, 3);
        assert_eq!(s.total_bytes, (8 + 8 + 16 + 32) * 512);
        assert_eq!(s.sequential_ratio, 0.25);
    }

    #[test]
    fn inter_arrival_summary() {
        let t = Trace::from_records(
            TraceMeta::default(),
            vec![
                rec(0, 0, 8, OpType::Read),
                rec(10, 0, 8, OpType::Read),
                rec(40, 0, 8, OpType::Read),
            ],
        );
        let s = TraceStats::compute(&t);
        assert_eq!(s.mean_inter_arrival, SimDuration::from_usecs(20));
        assert_eq!(s.max_inter_arrival, SimDuration::from_usecs(30));
        assert_eq!(s.median_inter_arrival, SimDuration::from_usecs(30));
    }

    #[test]
    fn total_gib_scales() {
        let t = Trace::from_records(
            TraceMeta::default(),
            vec![rec(0, 0, 2048, OpType::Read)], // 1 MiB
        );
        let s = TraceStats::compute(&t);
        assert!((s.total_gib() - 1.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_fraction_helper() {
        use Sequentiality::{Random, Sequential};
        assert_eq!(sequential_fraction(&[]), 0.0);
        assert_eq!(sequential_fraction(&[Sequential, Random]), 0.5);
    }
}
