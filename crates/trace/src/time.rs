//! Simulation time newtypes.
//!
//! All timing in the workspace is carried by two newtypes over `u64`
//! nanoseconds: [`SimInstant`] (a point on the simulation clock) and
//! [`SimDuration`] (a span between two instants). Keeping them distinct makes
//! the decomposition arithmetic of the paper (`Tintt = Tslat + Tidle`)
//! type-checked: an instant minus an instant is a duration, an instant plus a
//! duration is an instant, and nothing else compiles.
//!
//! Nanosecond resolution comfortably covers the paper's range: channel delays
//! are a few microseconds, idle periods run to hundreds of seconds, and
//! `u64` nanoseconds wraps only after ~584 years of simulated time.
//!
//! # Examples
//!
//! ```
//! use tt_trace::time::{SimDuration, SimInstant};
//!
//! let issue = SimInstant::from_usecs(10);
//! let complete = issue + SimDuration::from_usecs(150);
//! assert_eq!(complete - issue, SimDuration::from_usecs(150));
//! assert_eq!((complete - issue).as_usecs_f64(), 150.0);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in nanoseconds since the simulation epoch.
///
/// `SimInstant` is totally ordered and starts at [`SimInstant::ZERO`]. It is
/// produced by the replay engine and carried on every trace record as the
/// block-layer arrival timestamp.
///
/// # Examples
///
/// ```
/// use tt_trace::time::{SimDuration, SimInstant};
///
/// let t0 = SimInstant::ZERO;
/// let t1 = t0 + SimDuration::from_msecs(2);
/// assert!(t1 > t0);
/// assert_eq!(t1.as_nanos(), 2_000_000);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
#[repr(transparent)]
pub struct SimInstant(u64);

/// A span of simulated time, in nanoseconds.
///
/// Durations are unsigned: subtracting a later instant from an earlier one is
/// a programming error and panics in debug builds. Use
/// [`SimInstant::saturating_since`] when an underflowing difference should
/// clamp to zero (the paper's `Tidle = max(0, Tintt - Tslat)` rule).
///
/// # Examples
///
/// ```
/// use tt_trace::time::SimDuration;
///
/// let slat = SimDuration::from_usecs(120);
/// let intt = SimDuration::from_usecs(500);
/// assert_eq!(intt.saturating_sub(slat), SimDuration::from_usecs(380));
/// assert_eq!(slat.saturating_sub(intt), SimDuration::ZERO);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimInstant {
    /// The simulation epoch.
    pub const ZERO: SimInstant = SimInstant(0);

    /// Creates an instant from raw nanoseconds since the epoch.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimInstant(ns)
    }

    /// Creates an instant from microseconds since the epoch.
    #[must_use]
    pub const fn from_usecs(us: u64) -> Self {
        SimInstant(us * 1_000)
    }

    /// Creates an instant from milliseconds since the epoch.
    #[must_use]
    pub const fn from_msecs(ms: u64) -> Self {
        SimInstant(ms * 1_000_000)
    }

    /// Creates an instant from seconds since the epoch.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimInstant(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the epoch.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Reinterprets a slice of raw nanosecond values as instants, without
    /// copying — the typed-view hook the zero-copy TTB mapping
    /// ([`MmapTrace`](crate::format::ttb::MmapTrace)) uses for the arrival
    /// column.
    ///
    /// Sound because `SimInstant` is `#[repr(transparent)]` over `u64` and
    /// every `u64` bit pattern is a valid instant; the returned slice
    /// borrows `nanos` and aliases it immutably.
    #[must_use]
    pub fn slice_from_nanos(nanos: &[u64]) -> &[SimInstant] {
        // SAFETY: #[repr(transparent)] guarantees identical layout and
        // alignment to u64, and SimInstant has no invalid bit patterns.
        unsafe { std::slice::from_raw_parts(nanos.as_ptr().cast::<SimInstant>(), nanos.len()) }
    }

    /// Microseconds since the epoch as a float (lossless below 2^53 ns).
    #[must_use]
    pub fn as_usecs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since the epoch as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier`, clamping to zero if `earlier` is in
    /// the future.
    ///
    /// # Examples
    ///
    /// ```
    /// use tt_trace::time::{SimDuration, SimInstant};
    ///
    /// let a = SimInstant::from_usecs(5);
    /// let b = SimInstant::from_usecs(9);
    /// assert_eq!(b.saturating_since(a), SimDuration::from_usecs(4));
    /// assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    /// ```
    #[must_use]
    pub fn saturating_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference; `None` when `earlier` is actually later.
    #[must_use]
    pub fn checked_since(self, earlier: SimInstant) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: SimInstant) -> SimInstant {
        SimInstant(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[must_use]
    pub fn min(self, other: SimInstant) -> SimInstant {
        SimInstant(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Largest representable span; useful as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_usecs(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_msecs(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1_000_000_000.0).round() as u64)
    }

    /// Creates a duration from fractional microseconds, rounding to
    /// nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    #[must_use]
    pub fn from_usecs_f64(us: f64) -> Self {
        assert!(
            us.is_finite() && us >= 0.0,
            "duration microseconds must be finite and non-negative, got {us}"
        );
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// Raw nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds as a float.
    #[must_use]
    pub fn as_usecs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Milliseconds as a float.
    #[must_use]
    pub fn as_msecs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Seconds as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// `true` when the span is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Difference clamped at zero.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked subtraction; `None` on underflow.
    #[must_use]
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Saturating addition (clamps at [`SimDuration::MAX`]).
    #[must_use]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Scales the duration by a non-negative float, rounding to nanoseconds.
    ///
    /// Used by the Acceleration reconstructor (`Tintt / factor`).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The larger of two durations.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;

    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimInstant {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimInstant {
    type Output = SimInstant;

    fn sub(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 - rhs.0)
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics on underflow (subtracting a later instant); use
    /// [`SimInstant::saturating_since`] for the clamped form.
    fn sub(self, rhs: SimInstant) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                // lint:allow(panic) -- documented Sub contract, mirroring std::time::Instant; saturating_since is the non-panicking form
                .expect("instant subtraction underflow: rhs is later than lhs"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics on underflow; use [`SimDuration::saturating_sub`] for the
    /// clamped form.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                // lint:allow(panic) -- documented Sub contract, mirroring std::time::Duration; saturating_sub is the non-panicking form
                .expect("duration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics when `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    /// Human-oriented rendering with an auto-selected unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1_000.0)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1_000_000.0)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1_000_000_000.0)
        }
    }
}

impl From<std::time::Duration> for SimDuration {
    fn from(d: std::time::Duration) -> Self {
        SimDuration(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }
}

impl From<SimDuration> for std::time::Duration {
    fn from(d: SimDuration) -> Self {
        std::time::Duration::from_nanos(d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_duration_arithmetic_round_trips() {
        let t = SimInstant::from_usecs(100);
        let d = SimDuration::from_usecs(40);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_msecs(1000));
        assert_eq!(SimDuration::from_msecs(1), SimDuration::from_usecs(1000));
        assert_eq!(SimDuration::from_usecs(1), SimDuration::from_nanos(1000));
        assert_eq!(
            SimInstant::from_secs(2),
            SimInstant::from_nanos(2_000_000_000)
        );
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimInstant::from_usecs(5);
        let b = SimInstant::from_usecs(7);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_usecs(2));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn instant_subtraction_panics_on_underflow() {
        let _ = SimInstant::from_usecs(1) - SimInstant::from_usecs(2);
    }

    #[test]
    fn mul_f64_rounds_to_nanos() {
        let d = SimDuration::from_nanos(10);
        assert_eq!(d.mul_f64(0.25), SimDuration::from_nanos(3)); // 2.5 rounds up
        assert_eq!(d.mul_f64(2.0), SimDuration::from_nanos(20));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_round_trips_within_nanosecond() {
        let d = SimDuration::from_secs_f64(1.234_567_891);
        assert_eq!(d.as_nanos(), 1_234_567_891);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_usecs).sum();
        assert_eq!(total, SimDuration::from_usecs(10));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(120).to_string(), "120ns");
        assert_eq!(SimDuration::from_usecs(7).to_string(), "7.00us");
        assert_eq!(SimDuration::from_msecs(3).to_string(), "3.00ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn std_duration_conversions() {
        let d = SimDuration::from_msecs(5);
        let std: std::time::Duration = d.into();
        assert_eq!(SimDuration::from(std), d);
    }

    #[test]
    fn min_max_behave() {
        let a = SimDuration::from_usecs(1);
        let b = SimDuration::from_usecs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let ta = SimInstant::from_usecs(1);
        let tb = SimInstant::from_usecs(2);
        assert_eq!(ta.max(tb), tb);
        assert_eq!(ta.min(tb), ta);
    }
}
