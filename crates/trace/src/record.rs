//! Individual block-trace records.

use serde::{Deserialize, Serialize};

use crate::op::OpType;
use crate::time::{SimDuration, SimInstant};

/// Number of bytes in one logical sector (the unit of `lba` and `sectors`).
pub const SECTOR_BYTES: u64 = 512;

/// Device-side service timestamps for one request, when the trace records
/// them.
///
/// MSPS and MSRC traces were collected with an event-based kernel tracer and
/// carry *issue* (driver → disk) and *completion* timestamps; FIU traces do
/// not. Their difference is the observed `Tsdev` of the paper's §V
/// ("`Tsdev`-known" traces can skip the device-time inference phase).
///
/// # Examples
///
/// ```
/// use tt_trace::{ServiceTiming, time::SimInstant};
///
/// let t = ServiceTiming::new(SimInstant::from_usecs(10), SimInstant::from_usecs(150));
/// assert_eq!(t.device_time().as_usecs_f64(), 140.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ServiceTiming {
    /// When the request was issued from the device driver to the device.
    pub issue: SimInstant,
    /// When the device reported completion.
    pub complete: SimInstant,
}

impl ServiceTiming {
    /// Creates a timing pair.
    ///
    /// # Panics
    ///
    /// Panics if `complete` precedes `issue`.
    #[must_use]
    pub fn new(issue: SimInstant, complete: SimInstant) -> Self {
        assert!(
            complete >= issue,
            "completion ({complete}) precedes issue ({issue})"
        );
        ServiceTiming { issue, complete }
    }

    /// The observed device service time (`complete - issue`).
    #[must_use]
    pub fn device_time(self) -> SimDuration {
        self.complete - self.issue
    }
}

/// One entry of a block trace, as captured underneath the block layer.
///
/// This is a passive, C-style data structure with public fields; the
/// [`Trace`](crate::Trace) container enforces cross-record invariants
/// (arrival ordering).
///
/// # Examples
///
/// ```
/// use tt_trace::{BlockRecord, OpType, time::SimInstant};
///
/// let rec = BlockRecord::new(SimInstant::from_usecs(42), 2048, 8, OpType::Read);
/// assert_eq!(rec.bytes(), 8 * 512);
/// assert_eq!(rec.end_lba(), 2056);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockRecord {
    /// Block-layer arrival timestamp (blktrace `Q`).
    pub arrival: SimInstant,
    /// First logical block address, in 512-byte sectors.
    pub lba: u64,
    /// Request length in 512-byte sectors. Always non-zero.
    pub sectors: u32,
    /// Read or write.
    pub op: OpType,
    /// Device-side issue/completion timestamps, when the trace provides them.
    pub timing: Option<ServiceTiming>,
}

impl BlockRecord {
    /// Creates a record without device-side timing.
    ///
    /// # Panics
    ///
    /// Panics if `sectors` is zero; zero-length block requests do not occur
    /// in real traces and would poison the size-based grouping.
    #[must_use]
    pub fn new(arrival: SimInstant, lba: u64, sectors: u32, op: OpType) -> Self {
        assert!(sectors > 0, "block request must cover at least one sector");
        BlockRecord {
            arrival,
            lba,
            sectors,
            op,
            timing: None,
        }
    }

    /// Creates a record carrying device-side timing, builder-style.
    ///
    /// # Examples
    ///
    /// ```
    /// use tt_trace::{BlockRecord, OpType, ServiceTiming, time::SimInstant};
    ///
    /// let rec = BlockRecord::new(SimInstant::ZERO, 0, 8, OpType::Write)
    ///     .with_timing(ServiceTiming::new(
    ///         SimInstant::from_usecs(1),
    ///         SimInstant::from_usecs(90),
    ///     ));
    /// assert!(rec.timing.is_some());
    /// ```
    #[must_use]
    pub fn with_timing(mut self, timing: ServiceTiming) -> Self {
        self.timing = Some(timing);
        self
    }

    /// Request length in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        u64::from(self.sectors) * SECTOR_BYTES
    }

    /// Request length in kilobytes (floating point, for statistics).
    #[must_use]
    pub fn kilobytes(&self) -> f64 {
        self.bytes() as f64 / 1024.0
    }

    /// One past the last sector touched by this request.
    #[must_use]
    pub fn end_lba(&self) -> u64 {
        self.lba + u64::from(self.sectors)
    }

    /// `true` when this request starts exactly where `prev` ended — the
    /// sequentiality test used for grouping (§III "sequential vs. random").
    #[must_use]
    pub fn is_sequential_after(&self, prev: &BlockRecord) -> bool {
        BlockRecord::lba_run_continues(prev.lba, prev.sectors, self.lba)
    }

    /// The raw-column form of [`BlockRecord::is_sequential_after`]: does a
    /// request at `lba` start exactly where `(prev_lba, prev_sectors)`
    /// ended? The single definition of the sequentiality rule, shared with
    /// columnar scans that never assemble records.
    #[must_use]
    pub const fn lba_run_continues(prev_lba: u64, prev_sectors: u32, lba: u64) -> bool {
        lba == prev_lba + prev_sectors as u64
    }

    /// The observed device time, when the trace recorded it.
    #[must_use]
    pub fn device_time(&self) -> Option<SimDuration> {
        self.timing.map(ServiceTiming::device_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(arrival_us: u64, lba: u64, sectors: u32) -> BlockRecord {
        BlockRecord::new(
            SimInstant::from_usecs(arrival_us),
            lba,
            sectors,
            OpType::Read,
        )
    }

    #[test]
    fn bytes_and_kb() {
        let r = rec(0, 0, 16);
        assert_eq!(r.bytes(), 8192);
        assert!((r.kilobytes() - 8.0).abs() < f64::EPSILON);
    }

    #[test]
    #[should_panic(expected = "at least one sector")]
    fn zero_sector_rejected() {
        let _ = BlockRecord::new(SimInstant::ZERO, 0, 0, OpType::Read);
    }

    #[test]
    fn sequentiality_is_exact_adjacency() {
        let a = rec(0, 100, 8);
        let b = rec(1, 108, 8);
        let c = rec(2, 109, 8);
        assert!(b.is_sequential_after(&a));
        assert!(!c.is_sequential_after(&a));
        assert!(!a.is_sequential_after(&b));
    }

    #[test]
    fn service_timing_device_time() {
        let t = ServiceTiming::new(SimInstant::from_usecs(5), SimInstant::from_usecs(25));
        assert_eq!(t.device_time(), SimDuration::from_usecs(20));
    }

    #[test]
    #[should_panic(expected = "precedes issue")]
    fn service_timing_rejects_inverted() {
        let _ = ServiceTiming::new(SimInstant::from_usecs(25), SimInstant::from_usecs(5));
    }

    #[test]
    fn with_timing_attaches() {
        let r = rec(0, 0, 8).with_timing(ServiceTiming::new(
            SimInstant::from_usecs(1),
            SimInstant::from_usecs(2),
        ));
        assert_eq!(r.device_time(), Some(SimDuration::from_usecs(1)));
    }

    #[test]
    fn serde_round_trip() {
        let r = rec(7, 42, 8);
        let json = serde_json::to_string(&r).unwrap();
        let back: BlockRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
