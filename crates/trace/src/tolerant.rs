//! Error-budget decoding: [`ErrorPolicy`], [`QuarantineLog`], and the
//! [`TolerantSource`] wrapper.
//!
//! Real-world trace corpora arrive dirty — truncated lines, garbage
//! fields, foreign rows mixed in — and an all-or-nothing parser rejects a
//! multi-month trace over one bad record. This module lets any streaming
//! decode degrade gracefully instead: a [`TolerantSource`] wraps a
//! [`RecordSource`] and, under a non-[`Abort`](ErrorPolicy::Abort) policy,
//! **skips malformed records** (recoverable parse errors only — I/O and
//! structural errors still abort), counting and quarantining each one with
//! its 1-based line number so nothing disappears silently.
//!
//! The policy is threaded through the `tracetracker::Pipeline` facade as
//! `.on_error(...)` and through `tt-cli` as `--on-error skip:N`.
//!
//! # Examples
//!
//! ```
//! use tt_trace::tolerant::{ErrorPolicy, TolerantSource};
//! use tt_trace::format::csv::CsvSource;
//! use tt_trace::{collect_source, TraceMeta};
//!
//! let dirty = "100,R,0,8\nnot,a,record\n200,W,8,8\n";
//! let policy = ErrorPolicy::skip(10);
//! let mut source = TolerantSource::new(CsvSource::new(dirty.as_bytes()), policy.clone());
//! let trace = collect_source(&mut source, TraceMeta::named("dirty"), 64)?;
//! assert_eq!(trace.len(), 2); // the bad line was skipped, not fatal
//! assert_eq!(policy.quarantined(), 1);
//! # Ok::<(), tt_trace::TraceError>(())
//! ```

use std::sync::{Arc, Mutex};

use crate::error::TraceError;
use crate::record::BlockRecord;
use crate::source::RecordSource;

/// One skipped record: where it was and why it failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// 1-based line number in the source file, when known.
    pub line: Option<usize>,
    /// The decode error's message.
    pub message: String,
}

/// A shared, append-only log of quarantined records.
///
/// Cloning is cheap (the log is reference-counted): keep one clone to read
/// the report after handing the other to an [`ErrorPolicy`]. Thread-safe —
/// the fused pipeline executor decodes on a worker thread.
#[derive(Debug, Clone, Default)]
pub struct QuarantineLog {
    entries: Arc<Mutex<Vec<QuarantineEntry>>>,
}

impl QuarantineLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        QuarantineLog::default()
    }

    /// Appends an entry.
    pub fn push(&self, entry: QuarantineEntry) {
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(entry);
    }

    /// Number of quarantined records so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// `true` when nothing has been quarantined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of all entries.
    #[must_use]
    pub fn entries(&self) -> Vec<QuarantineEntry> {
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

/// How a pipeline reacts to malformed input records.
///
/// Only **recoverable** decode failures — [`TraceError::Parse`], i.e. one
/// bad line of a text format — are subject to the policy; I/O errors,
/// structural/format errors, and invariant violations always abort
/// regardless. The default is [`Abort`](ErrorPolicy::Abort): existing
/// behaviour, every error fatal.
#[derive(Debug, Clone, Default)]
pub enum ErrorPolicy {
    /// Any decode error aborts the run (the default).
    #[default]
    Abort,
    /// Skip up to `max` malformed records (logging each), then abort with
    /// an error-budget-exhausted error.
    Skip {
        /// Maximum number of malformed records tolerated.
        max: usize,
        /// Where skipped records are logged.
        log: QuarantineLog,
    },
    /// Skip every malformed record, logging each into `sink` — an
    /// unlimited budget for corpora where dirt is expected.
    Quarantine {
        /// Where skipped records are logged.
        sink: QuarantineLog,
    },
}

impl ErrorPolicy {
    /// [`ErrorPolicy::Skip`] with a fresh log. Keep a clone of the policy
    /// to read [`quarantined`](ErrorPolicy::quarantined) afterwards.
    #[must_use]
    pub fn skip(max: usize) -> Self {
        ErrorPolicy::Skip {
            max,
            log: QuarantineLog::new(),
        }
    }

    /// [`ErrorPolicy::Quarantine`] with a fresh log.
    #[must_use]
    pub fn quarantine() -> Self {
        ErrorPolicy::Quarantine {
            sink: QuarantineLog::new(),
        }
    }

    /// `true` for [`ErrorPolicy::Abort`].
    #[must_use]
    pub fn is_abort(&self) -> bool {
        matches!(self, ErrorPolicy::Abort)
    }

    /// The policy's quarantine log, if it has one.
    #[must_use]
    pub fn log(&self) -> Option<&QuarantineLog> {
        match self {
            ErrorPolicy::Abort => None,
            ErrorPolicy::Skip { log, .. } => Some(log),
            ErrorPolicy::Quarantine { sink } => Some(sink),
        }
    }

    /// Number of records quarantined under this policy so far (0 for
    /// [`Abort`](ErrorPolicy::Abort)).
    #[must_use]
    pub fn quarantined(&self) -> usize {
        self.log().map_or(0, QuarantineLog::len)
    }
}

/// A [`RecordSource`] wrapper that applies an [`ErrorPolicy`] to its
/// inner source's decode errors.
///
/// On a recoverable error the wrapper logs the record and **resumes** the
/// inner source — both text readers ([`CsvSource`](crate::format::csv::CsvSource),
/// [`BlkSource`](crate::format::blk::BlkSource)) are positioned past the
/// offending line when they report it, and any records decoded before the
/// error are kept. Under [`ErrorPolicy::Abort`] the wrapper is transparent.
#[derive(Debug)]
pub struct TolerantSource<S> {
    inner: S,
    policy: ErrorPolicy,
    skipped: usize,
    name: String,
}

impl<S: RecordSource> TolerantSource<S> {
    /// Wraps `inner` under `policy`.
    #[must_use]
    pub fn new(inner: S, policy: ErrorPolicy) -> Self {
        let name = format!("tolerant({})", inner.source_name());
        TolerantSource {
            inner,
            policy,
            skipped: 0,
            name,
        }
    }

    /// Number of records skipped so far.
    #[must_use]
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// The wrapper's policy.
    #[must_use]
    pub fn policy(&self) -> &ErrorPolicy {
        &self.policy
    }

    /// `true` when the policy can absorb `err` instead of aborting.
    fn recoverable(err: &TraceError) -> bool {
        matches!(err, TraceError::Parse { .. })
    }

    /// Applies the policy to a recoverable error: log + count, or abort
    /// when the budget is spent.
    fn absorb(&mut self, err: TraceError) -> Result<(), TraceError> {
        let TraceError::Parse { message, line } = &err else {
            return Err(err);
        };
        let entry = QuarantineEntry {
            line: *line,
            message: message.clone(),
        };
        match &self.policy {
            ErrorPolicy::Abort => Err(err),
            ErrorPolicy::Skip { max, log } => {
                log.push(entry);
                self.skipped += 1;
                if self.skipped > *max {
                    Err(TraceError::format(format!(
                        "error budget exhausted: {} malformed records (limit {max}); last: {err}",
                        self.skipped
                    )))
                } else {
                    Ok(())
                }
            }
            ErrorPolicy::Quarantine { sink } => {
                sink.push(entry);
                self.skipped += 1;
                Ok(())
            }
        }
    }
}

impl<S: RecordSource> RecordSource for TolerantSource<S> {
    fn next_chunk(&mut self, out: &mut Vec<BlockRecord>, max: usize) -> Result<usize, TraceError> {
        let start = out.len();
        // The inner source may append good records *and then* fail on a
        // bad line — track progress through `out`, not return values.
        while out.len() - start < max {
            let want = max - (out.len() - start);
            match self.inner.next_chunk(out, want) {
                Ok(0) => break,
                Ok(_) => {}
                Err(err) if Self::recoverable(&err) => self.absorb(err)?,
                Err(err) => return Err(err),
            }
        }
        Ok(out.len() - start)
    }

    fn source_name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::csv::CsvSource;
    use crate::source::collect_source;
    use crate::trace::TraceMeta;

    /// 5 good records with a bad line after every good one.
    const DIRTY: &str = "\
100,R,0,8
garbage
200,W,8,8
300,R,notanlba,8
400,R,16,8
500,R,24,0
600,W,32,8
too,few
700,R,40,8
";

    const CLEAN: &str = "\
100,R,0,8
200,W,8,8
400,R,16,8
600,W,32,8
700,R,40,8
";

    fn tolerant(
        input: &'static str,
        policy: ErrorPolicy,
    ) -> TolerantSource<CsvSource<&'static [u8]>> {
        TolerantSource::new(CsvSource::new(input.as_bytes()), policy)
    }

    #[test]
    fn skip_yields_the_clean_subset() {
        for chunk in [1usize, 2, 7, 1000] {
            let policy = ErrorPolicy::skip(10);
            let mut src = tolerant(DIRTY, policy.clone());
            let trace = collect_source(&mut src, TraceMeta::named("d"), chunk).unwrap();
            let clean = collect_source(
                &mut CsvSource::new(CLEAN.as_bytes()),
                TraceMeta::named("d"),
                chunk,
            )
            .unwrap();
            assert_eq!(trace.records(), clean.records(), "chunk {chunk}");
            assert_eq!(src.skipped(), 4, "chunk {chunk}");
            assert_eq!(policy.quarantined(), 4, "chunk {chunk}");
        }
    }

    #[test]
    fn quarantine_log_names_lines() {
        let policy = ErrorPolicy::quarantine();
        let mut src = tolerant(DIRTY, policy.clone());
        collect_source(&mut src, TraceMeta::named("d"), 64).unwrap();
        let log = policy.log().unwrap();
        let lines: Vec<Option<usize>> = log.entries().iter().map(|e| e.line).collect();
        assert_eq!(lines, vec![Some(2), Some(4), Some(6), Some(8)]);
    }

    #[test]
    fn exhausted_budget_aborts() {
        let mut src = tolerant(DIRTY, ErrorPolicy::skip(2));
        let err = collect_source(&mut src, TraceMeta::named("d"), 64).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("error budget exhausted"), "{msg}");
        assert!(msg.contains("limit 2"), "{msg}");
    }

    #[test]
    fn abort_policy_is_transparent() {
        let mut src = tolerant(DIRTY, ErrorPolicy::Abort);
        let err = collect_source(&mut src, TraceMeta::named("d"), 64).unwrap_err();
        // The first bad line, with its 1-based number, verbatim.
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(ErrorPolicy::default().is_abort());
    }

    #[test]
    fn io_errors_are_never_absorbed() {
        struct Broken;
        impl RecordSource for Broken {
            fn next_chunk(
                &mut self,
                _out: &mut Vec<BlockRecord>,
                _max: usize,
            ) -> Result<usize, TraceError> {
                Err(TraceError::Io("disk on fire".into()))
            }
            fn source_name(&self) -> &str {
                "broken"
            }
        }
        let mut src = TolerantSource::new(Broken, ErrorPolicy::quarantine());
        let err = src.next_chunk(&mut Vec::new(), 16).unwrap_err();
        assert!(matches!(err, TraceError::Io(_)));
    }

    #[test]
    fn budget_boundary_is_inclusive() {
        // Exactly `max` bad records: fine. One more: fatal.
        let mut src = tolerant(DIRTY, ErrorPolicy::skip(4));
        let trace = collect_source(&mut src, TraceMeta::named("d"), 64).unwrap();
        assert_eq!(trace.len(), 5);
        let mut src = tolerant(DIRTY, ErrorPolicy::skip(3));
        assert!(collect_source(&mut src, TraceMeta::named("d"), 64).is_err());
    }
}
