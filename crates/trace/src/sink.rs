//! Streaming record sinks — the write-side mirror of [`RecordSource`].
//!
//! PR 1 made the *read* side streaming (chunked [`RecordSource`] pulls);
//! this module completes the pipeline shape: a [`RecordSink`] accepts
//! records **chunk by chunk**, so producers — format writers, the replay
//! engine, reconstruction — can emit traces far larger than RAM-comfortable
//! without materialising them first. The CSV and blkparse writers in
//! [`format`](crate::format) implement it; the whole-trace writers
//! (`write_csv`/`write_blk`) are thin drains over the same sinks, so
//! streaming and whole-trace serialisation produce byte-identical files.
//!
//! Records must be pushed in arrival order — exactly what every producer in
//! the workspace (sorted [`Trace`]s, replay, reconstruction) emits.
//!
//! # Examples
//!
//! Pump a source straight into a sink — a format conversion that never
//! holds more than one chunk of records:
//!
//! ```
//! use tt_trace::format::csv::{CsvSink, CsvSource};
//! use tt_trace::sink::pump;
//!
//! let input = "# trace: demo\n# timestamp_us,op,lba,sectors[,issue_us,complete_us]\n\
//!              1.000,R,0,8\n2.000,W,8,16\n";
//! let mut out = Vec::new();
//! let n = pump(
//!     &mut CsvSource::new(input.as_bytes()),
//!     &mut CsvSink::new(&mut out, "demo"),
//!     1,
//! )?;
//! assert_eq!(n, 2);
//! assert_eq!(String::from_utf8(out).unwrap(), input);
//! # Ok::<(), tt_trace::TraceError>(())
//! ```

use crate::error::TraceError;
use crate::record::BlockRecord;
use crate::source::RecordSource;
use crate::store::TraceStore;
use crate::trace::{Trace, TraceMeta};

/// A streaming consumer of block records (mirror of [`RecordSource`]).
///
/// Implementations accept records in arrival order, chunk by chunk;
/// [`RecordSink::finish`] flushes whatever the sink buffered (headers for
/// empty outputs, trailing state) and must be called exactly once after the
/// last chunk.
pub trait RecordSink {
    /// Accepts the next `records`, in arrival order.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] on I/O failure.
    fn push_chunk(&mut self, records: &[BlockRecord]) -> Result<(), TraceError>;

    /// Completes the stream (flush buffers, emit headers for empty output).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] on I/O failure.
    fn finish(&mut self) -> Result<(), TraceError>;

    /// Descriptive sink name (used for diagnostics).
    fn sink_name(&self) -> &str;
}

impl<S: RecordSink + ?Sized> RecordSink for &mut S {
    fn push_chunk(&mut self, records: &[BlockRecord]) -> Result<(), TraceError> {
        (**self).push_chunk(records)
    }

    fn finish(&mut self) -> Result<(), TraceError> {
        (**self).finish()
    }

    fn sink_name(&self) -> &str {
        (**self).sink_name()
    }
}

/// Drains `source` into `sink`, `chunk` records at a time, finishing the
/// sink. Returns the number of records transferred.
///
/// Records flow through in **file order**; when the source may be unordered
/// collect into a [`Trace`] first (the trace sorts) and use
/// [`drain_trace`].
///
/// # Errors
///
/// Propagates the first source or sink [`TraceError`].
pub fn pump<S, K>(source: &mut S, sink: &mut K, chunk: usize) -> Result<usize, TraceError>
where
    S: RecordSource + ?Sized,
    K: RecordSink + ?Sized,
{
    let chunk = chunk.max(1);
    let mut buf: Vec<BlockRecord> = Vec::with_capacity(chunk);
    let mut total = 0;
    loop {
        buf.clear();
        let n = source.next_chunk(&mut buf, chunk)?;
        if n == 0 {
            break;
        }
        sink.push_chunk(&buf)?;
        total += n;
    }
    sink.finish()?;
    Ok(total)
}

/// Streams a [`Trace`]'s records into `sink`, `chunk` at a time, assembling
/// rows from the columns on the fly (the trace's row cache is never built).
/// Finishes the sink.
///
/// # Errors
///
/// Propagates sink [`TraceError`]s.
pub fn drain_trace<K: RecordSink + ?Sized>(
    trace: &Trace,
    sink: &mut K,
    chunk: usize,
) -> Result<usize, TraceError> {
    pump(&mut TraceSource::new(trace), sink, chunk)
}

/// A [`RecordSource`] over a borrowed [`Trace`]: yields the records in
/// arrival order, assembled from the columns chunk by chunk.
///
/// # Examples
///
/// ```
/// use tt_trace::sink::TraceSource;
/// use tt_trace::source::{collect_source, RecordSource};
/// use tt_trace::{BlockRecord, OpType, Trace, TraceMeta, time::SimInstant};
///
/// let trace = Trace::from_records(
///     TraceMeta::named("demo"),
///     vec![BlockRecord::new(SimInstant::from_usecs(1), 0, 8, OpType::Read)],
/// );
/// let copy = collect_source(&mut TraceSource::new(&trace), trace.meta().clone(), 4)?;
/// assert_eq!(copy, trace);
/// # Ok::<(), tt_trace::TraceError>(())
/// ```
#[derive(Debug)]
pub struct TraceSource<'a> {
    trace: &'a Trace,
    pos: usize,
}

impl<'a> TraceSource<'a> {
    /// Wraps a trace.
    #[must_use]
    pub fn new(trace: &'a Trace) -> Self {
        TraceSource { trace, pos: 0 }
    }
}

impl RecordSource for TraceSource<'_> {
    fn next_chunk(&mut self, out: &mut Vec<BlockRecord>, max: usize) -> Result<usize, TraceError> {
        let store = self.trace.columns();
        let end = store.len().min(self.pos + max);
        let n = end - self.pos;
        out.reserve(n);
        for i in self.pos..end {
            out.push(store.record(i));
        }
        self.pos = end;
        Ok(n)
    }

    fn source_name(&self) -> &str {
        "trace"
    }
}

/// An in-memory sink that collects pushed records into a [`Trace`] — the
/// write-side mirror of [`VecSource`](crate::source::VecSource), and the
/// adapter that lets every streaming producer double as a whole-trace one.
///
/// # Examples
///
/// ```
/// use tt_trace::sink::{RecordSink, TraceSink};
/// use tt_trace::{BlockRecord, OpType, TraceMeta, time::SimInstant};
///
/// let mut sink = TraceSink::new(TraceMeta::named("demo"));
/// sink.push_chunk(&[BlockRecord::new(SimInstant::from_usecs(1), 0, 8, OpType::Read)])?;
/// sink.finish()?;
/// assert_eq!(sink.into_trace().len(), 1);
/// # Ok::<(), tt_trace::TraceError>(())
/// ```
#[derive(Debug, Default)]
pub struct TraceSink {
    meta: TraceMeta,
    store: TraceStore,
}

impl TraceSink {
    /// Creates a sink whose trace will carry `meta`.
    #[must_use]
    pub fn new(meta: TraceMeta) -> Self {
        TraceSink {
            meta,
            store: TraceStore::new(),
        }
    }

    /// Number of records collected so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` when nothing has been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Finalises the collected trace (stable arrival sort, like every trace
    /// constructor).
    #[must_use]
    pub fn into_trace(self) -> Trace {
        Trace::from_store(self.meta, self.store)
    }
}

impl RecordSink for TraceSink {
    fn push_chunk(&mut self, records: &[BlockRecord]) -> Result<(), TraceError> {
        self.store.extend(records.iter().copied());
        Ok(())
    }

    fn finish(&mut self) -> Result<(), TraceError> {
        Ok(())
    }

    fn sink_name(&self) -> &str {
        "memory"
    }
}

/// Running statistics of records pushed through a [`ChunkBuffer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkStats {
    /// Number of records pushed.
    pub records: usize,
    /// Arrival of the first record, if any.
    pub first: Option<crate::time::SimInstant>,
    /// Arrival of the last record, if any.
    pub last: Option<crate::time::SimInstant>,
}

impl SinkStats {
    /// Wall-clock span from first to last pushed arrival (zero when fewer
    /// than two records flowed through).
    #[must_use]
    pub fn span(&self) -> crate::time::SimDuration {
        match (self.first, self.last) {
            (Some(first), Some(last)) => last - first,
            _ => crate::time::SimDuration::ZERO,
        }
    }
}

/// Buffering adapter for producers that emit records **one at a time**
/// (replay, reconstruction): accumulates `chunk` records, pushes them as
/// one sink chunk, and tracks [`SinkStats`] along the way.
///
/// # Examples
///
/// ```
/// use tt_trace::sink::{ChunkBuffer, TraceSink};
/// use tt_trace::{BlockRecord, OpType, TraceMeta, time::SimInstant};
///
/// let mut sink = TraceSink::new(TraceMeta::named("demo"));
/// let mut out = ChunkBuffer::new(&mut sink, 2);
/// for i in 0..5u64 {
///     out.push(BlockRecord::new(SimInstant::from_usecs(i * 10), i, 8, OpType::Read))?;
/// }
/// let stats = out.finish()?;
/// assert_eq!(stats.records, 5);
/// assert_eq!(stats.span().as_usecs_f64(), 40.0);
/// # Ok::<(), tt_trace::TraceError>(())
/// ```
pub struct ChunkBuffer<'a> {
    sink: &'a mut dyn RecordSink,
    buf: Vec<BlockRecord>,
    chunk: usize,
    stats: SinkStats,
}

impl std::fmt::Debug for ChunkBuffer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkBuffer")
            .field("sink", &self.sink.sink_name())
            .field("buffered", &self.buf.len())
            .field("chunk", &self.chunk)
            .field("stats", &self.stats)
            .finish()
    }
}

impl<'a> ChunkBuffer<'a> {
    /// Wraps `sink`, flushing every `chunk` pushed records.
    pub fn new(sink: &'a mut dyn RecordSink, chunk: usize) -> Self {
        let chunk = chunk.max(1);
        ChunkBuffer {
            sink,
            buf: Vec::with_capacity(chunk),
            chunk,
            stats: SinkStats::default(),
        }
    }

    /// Pushes one record, flushing a full buffer into the sink.
    ///
    /// # Errors
    ///
    /// Propagates sink [`TraceError`]s.
    pub fn push(&mut self, record: BlockRecord) -> Result<(), TraceError> {
        if self.stats.first.is_none() {
            self.stats.first = Some(record.arrival);
        }
        self.stats.last = Some(record.arrival);
        self.stats.records += 1;
        self.buf.push(record);
        if self.buf.len() >= self.chunk {
            self.sink.push_chunk(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Flushes the tail chunk, finishes the sink, and returns the stats.
    ///
    /// # Errors
    ///
    /// Propagates sink [`TraceError`]s.
    pub fn finish(mut self) -> Result<SinkStats, TraceError> {
        if !self.buf.is_empty() {
            self.sink.push_chunk(&self.buf)?;
            self.buf.clear();
        }
        self.sink.finish()?;
        Ok(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpType;
    use crate::source::{VecSource, DEFAULT_CHUNK};
    use crate::time::SimInstant;

    fn rec(us: u64) -> BlockRecord {
        BlockRecord::new(SimInstant::from_usecs(us), us, 8, OpType::Read)
    }

    #[test]
    fn pump_transfers_everything_at_any_chunk() {
        let recs: Vec<BlockRecord> = (0..37).map(rec).collect();
        for chunk in [1usize, 2, 7, 64] {
            let mut sink = TraceSink::new(TraceMeta::named("t"));
            let n = pump(&mut VecSource::new(recs.clone()), &mut sink, chunk).unwrap();
            assert_eq!(n, 37, "chunk {chunk}");
            assert_eq!(sink.into_trace().records(), recs.as_slice());
        }
    }

    #[test]
    fn trace_source_round_trips_without_row_cache() {
        let trace = Trace::from_records(TraceMeta::named("t"), (0..10).map(rec).collect());
        let mut sink = TraceSink::new(trace.meta().clone());
        drain_trace(&trace, &mut sink, 3).unwrap();
        assert_eq!(sink.into_trace(), trace);
    }

    #[test]
    fn trace_sink_sorts_like_trace_constructors() {
        let mut sink = TraceSink::new(TraceMeta::default());
        sink.push_chunk(&[rec(30), rec(10)]).unwrap();
        sink.push_chunk(&[rec(20)]).unwrap();
        sink.finish().unwrap();
        let trace = sink.into_trace();
        let expect = Trace::from_records(TraceMeta::default(), vec![rec(30), rec(10), rec(20)]);
        assert_eq!(trace, expect);
    }

    #[test]
    fn pump_into_trace_sink_matches_collect_source() {
        let recs: Vec<BlockRecord> = (0..25).map(|i| rec(i * 3 % 17)).collect();
        let mut sink = TraceSink::new(TraceMeta::named("x"));
        pump(&mut VecSource::new(recs.clone()), &mut sink, DEFAULT_CHUNK).unwrap();
        let via_source = crate::source::collect_source(
            &mut VecSource::new(recs),
            TraceMeta::named("x"),
            DEFAULT_CHUNK,
        )
        .unwrap();
        assert_eq!(sink.into_trace(), via_source);
    }
}
