//! Read-only memory mapping with checked typed views.
//!
//! The TTB binary format lays its columns out as fixed-width little-endian
//! machine words precisely so that a mapped file can be *read in place* —
//! no bulk copy into heap `Vec`s, no parse, O(1) resident growth for the
//! load step. This module supplies the two ingredients the zero-copy
//! reader ([`MmapTrace`](crate::format::ttb::MmapTrace)) needs:
//!
//! * [`Mmap`] — a minimal owner of a read-only, page-aligned file mapping
//!   (`mmap(2)` on Unix; a plain buffered read elsewhere, same API);
//! * [`as_u64s`] / [`as_u32s`] — *checked* reinterpretations of byte
//!   ranges as typed column slices. They return `None` instead of casting
//!   whenever the bytes are misaligned for the target type, not an exact
//!   multiple of its size, or the platform is not little-endian — the
//!   caller then falls back to a copying decode, so a hostile or oddly
//!   laid-out file can never manufacture an unaligned or short slice.
//!
//! # Safety invariants
//!
//! The mapping is created `PROT_READ`/`MAP_PRIVATE` and never handed out
//! mutably, so aliasing the same physical bytes as `&[u8]` and as a typed
//! column slice is sound. The typed casts are only performed for types
//! with no invalid bit patterns (`u64`, `u32`) — enum-typed columns go
//! through value validation first (see
//! [`OpType::slice_from_bytes`](crate::OpType::slice_from_bytes)). The one
//! caveat every mmap consumer inherits: truncating the file *while it is
//! mapped* (from another process) can fault the mapping. That is the
//! standard `mmap(2)` contract, identical to every mapped-I/O library;
//! corrupt *contents* — the threat model this crate defends against — are
//! fully validated and can at worst produce a clean [`TraceError`].

use std::fs::File;

use crate::error::TraceError;

/// A read-only mapping of a whole file (owning handle).
///
/// On Unix this is a real `mmap(2)` region, unmapped on drop; on other
/// platforms it degrades to an owned in-memory copy with the same API, so
/// callers never need platform conditionals. Zero-length files are
/// represented without a kernel mapping (an empty slice).
///
/// # Examples
///
/// ```
/// use tt_trace::mmap::Mmap;
///
/// let path = std::env::temp_dir().join("tt_mmap_doc.bin");
/// std::fs::write(&path, b"hello").unwrap();
/// let map = Mmap::map_file(&std::fs::File::open(&path).unwrap()).unwrap();
/// assert_eq!(map.bytes(), b"hello");
/// std::fs::remove_file(&path).ok();
/// ```
#[derive(Debug)]
pub struct Mmap {
    backing: Backing,
}

#[derive(Debug)]
enum Backing {
    /// A live kernel mapping: `ptr` is valid for `len` bytes until drop.
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    /// Owned bytes (zero-length files, non-Unix platforms).
    Owned(Vec<u8>),
}

// SAFETY: the mapping is read-only for its whole lifetime (PROT_READ and
// no mutable accessor), so the owning handle can move across threads.
unsafe impl Send for Mmap {}
// SAFETY: all access goes through `&self` methods over immutable bytes
// (the kernel never mutates a MAP_PRIVATE read-only mapping), so shared
// references from several threads cannot race.
unsafe impl Sync for Mmap {}

#[cfg(unix)]
mod sys {
    //! The two raw libc entry points we need, declared directly — the
    //! offline build has no `libc` crate, but every Unix target already
    //! links the C library these symbols live in.
    use std::ffi::{c_int, c_long, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            // The plain `mmap` symbol takes the platform off_t, which is
            // c_long-sized on both 32- and 64-bit Unix ABIs — declaring
            // i64 here would corrupt the argument area on 32-bit targets.
            offset: c_long,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }
}

impl Mmap {
    /// Maps the whole of `file` read-only.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] when the file's length cannot be read,
    /// exceeds the address space, or the kernel refuses the mapping.
    pub fn map_file(file: &File) -> Result<Mmap, TraceError> {
        let len = file
            .metadata()
            .map_err(|e| TraceError::Io(format!("mmap: {e}")))?
            .len();
        let len = usize::try_from(len)
            .map_err(|_| TraceError::Io(format!("mmap: file of {len} bytes exceeds memory")))?;
        if len == 0 {
            return Ok(Mmap {
                backing: Backing::Owned(Vec::new()),
            });
        }
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            // SAFETY: fd is a valid open file for the duration of the
            // call; len is non-zero; a MAP_FAILED return is checked before
            // the pointer is ever used.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as usize == usize::MAX {
                return Err(TraceError::Io(format!(
                    "mmap failed: {}",
                    std::io::Error::last_os_error()
                )));
            }
            Ok(Mmap {
                backing: Backing::Mapped {
                    ptr: ptr.cast_const().cast::<u8>(),
                    len,
                },
            })
        }
        #[cfg(not(unix))]
        {
            use std::io::Read;
            let mut buf = Vec::with_capacity(len);
            let mut file = file;
            file.read_to_end(&mut buf)
                .map_err(|e| TraceError::Io(format!("mmap fallback read: {e}")))?;
            Ok(Mmap {
                backing: Backing::Owned(buf),
            })
        }
    }

    /// Wraps an in-memory buffer in the mapping API — no kernel mapping,
    /// same access contract. Useful for tests and for validating TTB
    /// bytes that never touched a file.
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> Mmap {
        Mmap {
            backing: Backing::Owned(bytes),
        }
    }

    /// The mapped bytes. Stable for the lifetime of the `Mmap` (the
    /// backing never reallocates or unmaps before drop), which is what
    /// lets the TTB reader record column offsets at open time and resolve
    /// them to slices later.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // self; it is unmapped only in Drop, after every borrow ends.
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Owned(buf) => buf,
        }
    }

    /// Number of mapped bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { len, .. } => *len,
            Backing::Owned(buf) => buf.len(),
        }
    }

    /// `true` for an empty (zero-length) mapping.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: exactly the region mmap returned, unmapped once.
            unsafe {
                sys::munmap(ptr.cast_mut().cast(), len);
            }
        }
    }
}

/// Views `bytes` as a little-endian `u64` column without copying, or
/// `None` when the cast would be unsound or wrong: misaligned start,
/// length not a multiple of 8, or a big-endian platform (where in-place
/// bytes do not spell native `u64`s and a copying decode is required).
#[must_use]
pub fn as_u64s(bytes: &[u8]) -> Option<&[u64]> {
    if !cfg!(target_endian = "little")
        || !bytes.len().is_multiple_of(8)
        || bytes.as_ptr().align_offset(std::mem::align_of::<u64>()) != 0
    {
        return None;
    }
    // SAFETY: alignment and exact length were checked above; u64 has no
    // invalid bit patterns; the borrow keeps `bytes` alive and immutable.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u64>(), bytes.len() / 8) })
}

/// Views `bytes` as a little-endian `u32` column without copying; same
/// `None` conditions as [`as_u64s`] with 4-byte units.
#[must_use]
pub fn as_u32s(bytes: &[u8]) -> Option<&[u32]> {
    if !cfg!(target_endian = "little")
        || !bytes.len().is_multiple_of(4)
        || bytes.as_ptr().align_offset(std::mem::align_of::<u32>()) != 0
    {
        return None;
    }
    // SAFETY: alignment and exact length were checked above; u32 has no
    // invalid bit patterns; the borrow keeps `bytes` alive and immutable.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u32>(), bytes.len() / 4) })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tt_mmap_{}_{name}", std::process::id()))
    }

    #[test]
    fn maps_file_contents() {
        let path = temp("contents.bin");
        std::fs::write(&path, [1u8, 2, 3, 4, 5]).unwrap();
        let map = Mmap::map_file(&File::open(&path).unwrap()).unwrap();
        assert_eq!(map.bytes(), &[1, 2, 3, 4, 5]);
        assert_eq!(map.len(), 5);
        assert!(!map.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp("empty.bin");
        std::fs::write(&path, []).unwrap();
        let map = Mmap::map_file(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.bytes(), &[] as &[u8]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapping_is_page_aligned() {
        let path = temp("aligned.bin");
        std::fs::write(&path, vec![0u8; 64]).unwrap();
        let map = Mmap::map_file(&File::open(&path).unwrap()).unwrap();
        // mmap returns page-aligned memory, so the strictest column cast
        // succeeds at offset 0.
        assert!(as_u64s(map.bytes()).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn u64_cast_checks_alignment_and_length() {
        // A buffer with guaranteed 8-byte alignment to offset from.
        let buf: Vec<u64> = vec![0x0102_0304_0506_0708, 42];
        let bytes: &[u8] =
            // SAFETY: the view covers exactly the Vec's initialised
            // elements, u8 has alignment 1, and `buf` outlives the borrow.
            unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), buf.len() * 8) };
        assert_eq!(as_u64s(bytes).unwrap(), buf.as_slice());
        // Misaligned start.
        assert!(as_u64s(&bytes[1..9]).is_none());
        // Length not a multiple of 8.
        assert!(as_u64s(&bytes[..12]).is_none());
        // Empty is fine.
        assert_eq!(as_u64s(&bytes[..0]).unwrap(), &[] as &[u64]);
    }

    #[test]
    fn u32_cast_checks_alignment_and_length() {
        let buf: Vec<u32> = vec![7, 8, 9];
        let bytes: &[u8] =
            // SAFETY: the view covers exactly the Vec's initialised
            // elements, u8 has alignment 1, and `buf` outlives the borrow.
            unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), buf.len() * 4) };
        assert_eq!(as_u32s(bytes).unwrap(), buf.as_slice());
        assert!(as_u32s(&bytes[1..5]).is_none());
        assert!(as_u32s(&bytes[..6]).is_none());
    }
}
