//! # tt-trace — block-trace data model
//!
//! Foundation crate of the TraceTracker reproduction (IISWC 2017): the block
//! traces themselves. Everything the paper's pipeline consumes or produces is
//! a [`Trace`] — an arrival-ordered sequence of [`BlockRecord`]s, optionally
//! carrying device-side [`ServiceTiming`].
//!
//! ## Quick tour
//!
//! ```
//! use tt_trace::{BlockRecord, GroupedTrace, OpType, Trace, TraceMeta, TraceStats,
//!     time::SimInstant};
//!
//! // Build a tiny trace: two contiguous reads, then a random write.
//! let records = vec![
//!     BlockRecord::new(SimInstant::from_usecs(0), 1000, 8, OpType::Read),
//!     BlockRecord::new(SimInstant::from_usecs(150), 1008, 8, OpType::Read),
//!     BlockRecord::new(SimInstant::from_usecs(900), 5000, 16, OpType::Write),
//! ];
//! let trace = Trace::from_records(TraceMeta::named("demo"), records);
//!
//! // Inter-arrival times (the paper's Tintt) fall out of the container.
//! let gaps: Vec<f64> = trace.inter_arrivals().map(|d| d.as_usecs_f64()).collect();
//! assert_eq!(gaps, vec![150.0, 750.0]);
//!
//! // Partition by (sequentiality, op, size) for the inference model.
//! let grouped = GroupedTrace::build(&trace);
//! assert_eq!(grouped.group_count(), 3);
//!
//! // Table-I style summary statistics.
//! let stats = TraceStats::compute(&trace);
//! assert_eq!(stats.requests, 3);
//! ```
//!
//! ## Modules
//!
//! * [`time`] — `SimInstant` / `SimDuration` newtypes all timing flows
//!   through;
//! * [`store`](mod@store) — the columnar (struct-of-arrays) record store
//!   behind every [`Trace`], plus the borrowed [`Columns`] view every
//!   columnar analysis pass consumes;
//! * [`mmap`](mod@mmap) — read-only file mapping with checked typed casts,
//!   the substrate of the zero-copy TTB path
//!   ([`format::ttb::MmapTrace`]): a `.ttb` file's columns are analysed
//!   *in place*, no bulk copy into heap `Vec`s;
//! * [`source`](mod@source) — the [`RecordSource`] streaming-iterator
//!   abstraction for consuming traces chunk by chunk;
//! * [`sink`](mod@sink) — the [`RecordSink`] mirror for *producing* traces
//!   chunk by chunk ([`pump`] connects a source to a sink);
//! * [`multi`](mod@multi) — multi-stream fan-in: [`MultiSource`] merges
//!   several sources into one arrival-ordered flow of stream-tagged
//!   records ([`TaggedRecord`]), the input shape of concurrent replay;
//! * [`tolerant`](mod@tolerant) — error-budget decoding: [`TolerantSource`]
//!   applies an [`ErrorPolicy`] (skip-with-budget / quarantine) to any
//!   source's recoverable decode errors, logging skipped records in a
//!   [`QuarantineLog`];
//! * [`format`](mod@format) — CSV, blkparse-style, and native binary
//!   columnar (TTB) serialisation, with streaming readers
//!   ([`format::csv::CsvSource`], [`format::blk::BlkSource`],
//!   [`format::ttb::TtbSource`]), streaming writers
//!   ([`format::csv::CsvSink`], [`format::blk::BlkSink`],
//!   [`format::ttb::TtbSink`]), path-extension format detection
//!   ([`format::TraceFormat`]), and whole-trace movers
//!   ([`format::load_trace`], [`format::save_trace`]) that take the
//!   columnar bulk path for TTB;
//! * grouping ([`GroupedTrace`], [`classify_sequentiality`]) and statistics
//!   ([`TraceStats`]) re-exported at the crate root.
//!
//! Reading and writing are symmetric: `RecordSource → stages → RecordSink`
//! is the shape the whole workspace (and the `tracetracker::Pipeline`
//! facade) is built around, and the whole-file readers/writers
//! (`read_csv`/`write_csv`, `read_blk`/`write_blk`) are thin drains over
//! the streaming endpoints, byte-identical at any chunk size
//! (property-tested). TTB inverts the relationship for speed: the
//! whole-trace paths ([`format::ttb::read_ttb`],
//! [`format::ttb::write_ttb`]) move columns in bulk, and the streaming
//! endpoints adapt block by block — decoded records are identical either
//! way (property-tested).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod format;
pub mod group;
pub mod mmap;
pub mod multi;
pub mod op;
pub mod record;
pub mod registry;
pub mod sink;
pub mod source;
pub mod stats;
pub mod store;
pub mod time;
pub mod tolerant;
mod trace;

pub use error::TraceError;
pub use format::ttb::MmapTrace;
pub use group::{
    classify_columns, classify_sequentiality, Group, GroupKey, GroupedTrace, Sequentiality,
};
pub use multi::{MultiSource, TaggedRecord};
pub use op::OpType;
pub use record::{BlockRecord, ServiceTiming, SECTOR_BYTES};
pub use registry::MmapRegistry;
pub use sink::{drain_trace, pump, ChunkBuffer, RecordSink, SinkStats, TraceSink, TraceSource};
pub use source::{collect_source, ChunkCursor, RecordSource};
pub use stats::TraceStats;
pub use store::{Columns, TraceStore};
pub use tolerant::{ErrorPolicy, QuarantineEntry, QuarantineLog, TolerantSource};
pub use trace::{Trace, TraceMeta};
