//! Shared-mapping registry: one [`MmapTrace`] per `.ttb` file, held in an
//! [`Arc`] and handed to every concurrent reader.
//!
//! A resident service answering many queries over the same trace corpus
//! should pay the map-and-validate cost of [`MmapTrace::open`] **once**
//! per file, not once per request — and all concurrent readers should
//! share one kernel mapping (one page-cache residency), not N. The
//! registry is that cache: [`MmapRegistry::open`] returns the existing
//! `Arc<MmapTrace>` for a key or maps the file on first use, and
//! [`MmapRegistry::invalidate`] drops a cached mapping when the underlying
//! file is replaced or deleted (in-flight readers keep their `Arc` alive
//! until they finish — dropping the registry entry never invalidates a
//! borrowed view).
//!
//! Concurrent reads are sound by the same argument as every other
//! [`Columns`](crate::Columns) consumer: the mapping is read-only for its
//! whole lifetime and only ever lent out as shared borrows, so any number
//! of threads may group/summarise/infer off one mapping at once
//! (bit-identical to a single reader — property-tested at the facade).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use tt_trace::registry::MmapRegistry;
//! use tt_trace::{BlockRecord, OpType, Trace, TraceMeta, time::SimInstant};
//!
//! let path = std::env::temp_dir().join("tt_registry_doc.ttb");
//! let trace = Trace::from_records(
//!     TraceMeta::named("demo"),
//!     vec![BlockRecord::new(SimInstant::from_usecs(5), 0, 8, OpType::Read)],
//! );
//! trace.write_ttb(std::fs::File::create(&path).unwrap()).unwrap();
//!
//! let registry = MmapRegistry::new();
//! let first = registry.open("demo", &path).unwrap();
//! let second = registry.open("demo", &path).unwrap();
//! // One mapping, shared: the second open is a cache hit.
//! assert!(Arc::ptr_eq(&first, &second));
//! assert_eq!(first.len(), 1);
//! registry.invalidate("demo");
//! std::fs::remove_file(&path).ok();
//! ```

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::error::TraceError;
use crate::format::ttb::MmapTrace;

/// A keyed cache of shared, read-only trace mappings.
///
/// Keys are caller-chosen strings (a trace name, a canonical path — the
/// registry does not interpret them). The registry itself is `Sync`:
/// lookups take a short internal lock, and the returned `Arc<MmapTrace>`
/// is read without any lock at all.
#[derive(Debug, Default)]
pub struct MmapRegistry {
    inner: Mutex<HashMap<String, Arc<MmapTrace>>>,
}

impl MmapRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> MmapRegistry {
        MmapRegistry::default()
    }

    /// The map, with a poisoned lock recovered: every operation the lock
    /// guards leaves the map in a valid state (inserts and removes of
    /// complete entries), so a panicking reader cannot corrupt it.
    fn map(&self) -> MutexGuard<'_, HashMap<String, Arc<MmapTrace>>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Returns the cached mapping for `key`, or maps and validates the
    /// `.ttb` file at `path` on first use. Concurrent first opens of the
    /// same key serialise on the internal lock, so the file is mapped and
    /// validated exactly once.
    ///
    /// # Errors
    ///
    /// Propagates [`MmapTrace::open`] failures (I/O, corrupt or truncated
    /// TTB contents); nothing is cached on error, so a later call retries.
    pub fn open(&self, key: &str, path: impl AsRef<Path>) -> Result<Arc<MmapTrace>, TraceError> {
        let mut map = self.map();
        if let Some(mapped) = map.get(key) {
            return Ok(Arc::clone(mapped));
        }
        let mapped = Arc::new(MmapTrace::open(path)?);
        map.insert(key.to_string(), Arc::clone(&mapped));
        Ok(mapped)
    }

    /// The cached mapping for `key`, if any — never touches the
    /// filesystem.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<Arc<MmapTrace>> {
        self.map().get(key).map(Arc::clone)
    }

    /// Drops the cached mapping for `key`, returning `true` when one was
    /// cached. Call after replacing or deleting the underlying file;
    /// readers already holding the `Arc` keep a valid view of the **old**
    /// mapping until they drop it (the kernel mapping outlives the
    /// directory entry).
    pub fn invalidate(&self, key: &str) -> bool {
        self.map().remove(key).is_some()
    }

    /// Drops every cached mapping.
    pub fn clear(&self) {
        self.map().clear();
    }

    /// Number of cached mappings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map().len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map().is_empty()
    }

    /// The cached keys, in arbitrary order.
    #[must_use]
    pub fn keys(&self) -> Vec<String> {
        self.map().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimInstant;
    use crate::{BlockRecord, OpType, Trace, TraceMeta};

    fn write_ttb(name: &str, n: usize) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("tt_registry_{}_{name}.ttb", std::process::id()));
        let records: Vec<BlockRecord> = (0..n)
            .map(|i| {
                BlockRecord::new(
                    SimInstant::from_usecs(10 * i as u64),
                    8 * i as u64,
                    8,
                    if i % 3 == 0 {
                        OpType::Write
                    } else {
                        OpType::Read
                    },
                )
            })
            .collect();
        Trace::from_records(TraceMeta::named(name), records)
            .write_ttb(std::fs::File::create(&path).unwrap())
            .unwrap();
        path
    }

    #[test]
    fn open_caches_and_shares_one_mapping() {
        let path = write_ttb("share", 32);
        let reg = MmapRegistry::new();
        let a = reg.open("share", &path).unwrap();
        let b = reg.open("share", &path).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(reg.len(), 1);
        assert_eq!(a.len(), 32);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalidate_drops_cache_but_not_borrowed_views() {
        let path = write_ttb("inval", 8);
        let reg = MmapRegistry::new();
        let held = reg.open("inval", &path).unwrap();
        assert!(reg.invalidate("inval"));
        assert!(!reg.invalidate("inval"));
        assert!(reg.get("inval").is_none());
        // The held Arc still reads the old mapping even after the file is
        // gone from the directory.
        std::fs::remove_file(&path).ok();
        assert_eq!(held.columns().len(), 8);

        // Reopening after invalidation maps afresh.
        let path2 = write_ttb("inval", 4);
        let fresh = reg.open("inval", &path2).unwrap();
        assert_eq!(fresh.len(), 4);
        assert!(!Arc::ptr_eq(&held, &fresh));
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn open_error_caches_nothing() {
        let reg = MmapRegistry::new();
        let err = reg.open("ghost", "/definitely/not/here.ttb").unwrap_err();
        assert!(err.to_string().contains("not/here.ttb"));
        assert!(reg.is_empty());
    }

    #[test]
    fn concurrent_readers_share_and_agree() {
        let path = write_ttb("conc", 256);
        let reg = Arc::new(MmapRegistry::new());
        let baseline =
            crate::TraceStats::compute_columns(reg.open("conc", &path).unwrap().columns());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let reg = Arc::clone(&reg);
                let path = path.clone();
                let baseline = baseline.clone();
                scope.spawn(move || {
                    let mapped = reg.open("conc", &path).unwrap();
                    let stats = crate::TraceStats::compute_columns(mapped.columns());
                    assert_eq!(stats, baseline);
                });
            }
        });
        assert_eq!(reg.len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
