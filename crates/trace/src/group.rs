//! Request classification and grouping (paper §III).
//!
//! The inference model partitions a trace's requests three ways before any
//! CDF analysis:
//!
//! 1. **sequentiality** — a request is *sequential* when it starts exactly
//!    where the previous request ended, otherwise *random*;
//! 2. **operation type** — read vs. write;
//! 3. **request size** — in 512-byte sectors.
//!
//! Each resulting group collects the inter-arrival times (`Tintt`) that
//! follow its member requests; those per-group samples feed the CDF
//! steepness machinery in `tt-core`.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::op::OpType;
use crate::store::Columns;
use crate::time::SimDuration;
use crate::trace::Trace;

/// Whether a request continues the previous request's address range.
///
/// # Examples
///
/// ```
/// use tt_trace::Sequentiality;
///
/// assert_ne!(Sequentiality::Sequential, Sequentiality::Random);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Sequentiality {
    /// Starts at the previous request's end LBA.
    Sequential,
    /// Anything else (including the first request of a trace).
    Random,
}

impl Sequentiality {
    /// Both variants, sequential first.
    pub const ALL: [Sequentiality; 2] = [Sequentiality::Sequential, Sequentiality::Random];

    /// `true` for [`Sequentiality::Sequential`].
    #[must_use]
    pub const fn is_sequential(self) -> bool {
        matches!(self, Sequentiality::Sequential)
    }
}

impl fmt::Display for Sequentiality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sequentiality::Sequential => f.write_str("seq"),
            Sequentiality::Random => f.write_str("rand"),
        }
    }
}

/// Classifies every record of `trace` as sequential or random, in one pass
/// over the LBA and size columns.
///
/// The first record is always [`Sequentiality::Random`] — there is no
/// predecessor to be sequential to.
///
/// # Examples
///
/// ```
/// use tt_trace::{classify_sequentiality, BlockRecord, OpType, Sequentiality, Trace, TraceMeta,
///     time::SimInstant};
///
/// let recs = vec![
///     BlockRecord::new(SimInstant::from_usecs(0), 100, 8, OpType::Read),
///     BlockRecord::new(SimInstant::from_usecs(1), 108, 8, OpType::Read), // contiguous
///     BlockRecord::new(SimInstant::from_usecs(2), 500, 8, OpType::Read), // jump
/// ];
/// let trace = Trace::from_records(TraceMeta::default(), recs);
/// let classes = classify_sequentiality(&trace);
/// assert_eq!(classes, vec![
///     Sequentiality::Random,
///     Sequentiality::Sequential,
///     Sequentiality::Random,
/// ]);
/// ```
#[must_use]
pub fn classify_sequentiality(trace: &Trace) -> Vec<Sequentiality> {
    classify_columns(trace.view())
}

/// [`classify_sequentiality`] over a borrowed column view — identical
/// output whether the columns come from an owned store or a mapped `.ttb`
/// file.
#[must_use]
pub fn classify_columns(cols: Columns<'_>) -> Vec<Sequentiality> {
    let (lbas, sectors) = (cols.lbas(), cols.sectors());
    (0..cols.len())
        .map(|i| class_at(lbas, sectors, i))
        .collect()
}

/// Sequentiality of record `i` straight from the columns.
#[inline]
fn class_at(lbas: &[u64], sectors: &[u32], i: usize) -> Sequentiality {
    if i > 0 && crate::record::BlockRecord::lba_run_continues(lbas[i - 1], sectors[i - 1], lbas[i])
    {
        Sequentiality::Sequential
    } else {
        Sequentiality::Random
    }
}

/// Identity of one request group: (sequentiality, op type, request size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupKey {
    /// Sequential or random.
    pub seq: Sequentiality,
    /// Read or write.
    pub op: OpType,
    /// Request size in sectors.
    pub sectors: u32,
}

impl fmt::Display for GroupKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}sec", self.seq, self.op, self.sectors)
    }
}

/// One request group: member record indices and their following `Tintt`
/// samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Group {
    /// Indices into the source trace, in arrival order.
    pub indices: Vec<usize>,
    /// `Tintt` following each member that has a successor (so this can be
    /// one shorter than `indices` when the trace's last record is a member).
    pub inter_arrivals: Vec<SimDuration>,
}

impl Group {
    /// Number of member requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// `true` when the group has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Inter-arrival samples as microsecond floats (the unit the paper's
    /// CDFs are plotted in).
    #[must_use]
    pub fn inter_arrivals_usec(&self) -> Vec<f64> {
        self.inter_arrivals
            .iter()
            .map(|d| d.as_usecs_f64())
            .collect()
    }

    /// Writes the microsecond samples into `buf` (cleared first), reusing
    /// its allocation — the scratch-buffer form of
    /// [`Group::inter_arrivals_usec`] used by per-group analysis loops.
    pub fn usecs_into(&self, buf: &mut Vec<f64>) {
        buf.clear();
        buf.extend(self.inter_arrivals.iter().map(|d| d.as_usecs_f64()));
    }
}

/// A trace partitioned into (sequentiality × op × size) groups.
///
/// # Examples
///
/// ```
/// use tt_trace::{BlockRecord, GroupedTrace, OpType, Trace, TraceMeta, time::SimInstant};
///
/// let recs = (0..10)
///     .map(|i| BlockRecord::new(SimInstant::from_usecs(i * 100), i * 1000, 8, OpType::Read))
///     .collect();
/// let trace = Trace::from_records(TraceMeta::default(), recs);
/// let grouped = GroupedTrace::build(&trace);
/// assert_eq!(grouped.total_members(), 10);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroupedTrace {
    groups: BTreeMap<GroupKey, Group>,
}

/// Records per worker chunk below which parallel grouping stops splitting.
const MIN_PARALLEL_CHUNK: usize = 8_192;

/// Trace size from which [`GroupedTrace::build`] fans out across cores.
const PARALLEL_THRESHOLD: usize = 65_536;

/// Groups the records of `range`, reading only the columns (one pass, no
/// per-record method calls). Sequentiality at a chunk boundary peeks at the
/// predecessor's columns, and the gap after the last record of the range
/// reads the successor's arrival, so chunked results compose exactly.
fn build_range(cols: Columns<'_>, range: std::ops::Range<usize>) -> BTreeMap<GroupKey, Group> {
    let arrivals = cols.arrivals();
    let lbas = cols.lbas();
    let sectors = cols.sectors();
    let ops = cols.ops();
    let mut groups: BTreeMap<GroupKey, Group> = BTreeMap::new();
    for i in range {
        let key = GroupKey {
            seq: class_at(lbas, sectors, i),
            op: ops[i],
            sectors: sectors[i],
        };
        let group = groups.entry(key).or_default();
        group.indices.push(i);
        if let Some(&next) = arrivals.get(i + 1) {
            group.inter_arrivals.push(next - arrivals[i]);
        }
    }
    groups
}

impl GroupedTrace {
    /// Partitions `trace` into groups.
    ///
    /// A single pass over the columnar store; traces past a size threshold
    /// are partitioned across cores (see [`GroupedTrace::build_parallel`]),
    /// which produces **bit-identical** results to the sequential pass.
    #[must_use]
    pub fn build(trace: &Trace) -> Self {
        GroupedTrace::build_columns(trace.view())
    }

    /// Partitions a borrowed column view into groups — the entry point
    /// shared by owned traces ([`GroupedTrace::build`]) and memory-mapped
    /// `.ttb` files ([`MmapTrace`](crate::format::ttb::MmapTrace)), with
    /// the same auto-parallel fan-out and bit-identical output either way.
    #[must_use]
    pub fn build_columns(cols: Columns<'_>) -> Self {
        if cols.len() >= PARALLEL_THRESHOLD && tt_par::threads() > 1 {
            GroupedTrace::build_columns_parallel(cols)
        } else {
            GroupedTrace::build_columns_sequential(cols)
        }
    }

    /// Sequential single-pass grouping over the columns.
    #[must_use]
    pub fn build_sequential(trace: &Trace) -> Self {
        GroupedTrace::build_columns_sequential(trace.view())
    }

    /// [`GroupedTrace::build_sequential`] over a borrowed column view.
    #[must_use]
    pub fn build_columns_sequential(cols: Columns<'_>) -> Self {
        GroupedTrace {
            groups: build_range(cols, 0..cols.len()),
        }
    }

    /// Parallel grouping: contiguous index chunks are grouped on separate
    /// cores and merged in chunk order.
    ///
    /// Because chunks are ascending index ranges and every per-chunk pass
    /// reads boundary information from the shared columns, the merged
    /// partition (member indices *and* gap samples, in order) is identical
    /// to [`GroupedTrace::build_sequential`]'s.
    #[must_use]
    pub fn build_parallel(trace: &Trace) -> Self {
        GroupedTrace::build_columns_parallel(trace.view())
    }

    /// [`GroupedTrace::build_parallel`] over a borrowed column view.
    #[must_use]
    pub fn build_columns_parallel(cols: Columns<'_>) -> Self {
        let chunk_maps = tt_par::par_chunk_map(cols.len(), MIN_PARALLEL_CHUNK, |range| {
            build_range(cols, range)
        });
        let mut groups: BTreeMap<GroupKey, Group> = BTreeMap::new();
        for map in chunk_maps {
            for (key, mut part) in map {
                let group = groups.entry(key).or_default();
                group.indices.append(&mut part.indices);
                group.inter_arrivals.append(&mut part.inter_arrivals);
            }
        }
        GroupedTrace { groups }
    }

    /// The group for `key`, if present.
    #[must_use]
    pub fn get(&self, key: &GroupKey) -> Option<&Group> {
        self.groups.get(key)
    }

    /// Iterates over `(key, group)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&GroupKey, &Group)> {
        self.groups.iter()
    }

    /// Number of distinct groups.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Sum of member counts across groups (equals the trace length).
    #[must_use]
    pub fn total_members(&self) -> usize {
        self.groups.values().map(Group::len).sum()
    }

    /// Groups matching a sequentiality and op type, keyed by request size.
    ///
    /// This is the slice of the partition the steepness analysis walks: "we
    /// create multiple graphs of CDF(Tintt) for each request size observed in
    /// each read or write with the sequential access pattern" (§III).
    pub fn by_size(&self, seq: Sequentiality, op: OpType) -> impl Iterator<Item = (u32, &Group)> {
        self.groups
            .iter()
            .filter(move |(k, _)| k.seq == seq && k.op == op)
            .map(|(k, g)| (k.sectors, g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::BlockRecord;
    use crate::time::SimInstant;
    use crate::trace::TraceMeta;

    fn trace_of(recs: Vec<BlockRecord>) -> Trace {
        Trace::from_records(TraceMeta::default(), recs)
    }

    fn rec(us: u64, lba: u64, sectors: u32, op: OpType) -> BlockRecord {
        BlockRecord::new(SimInstant::from_usecs(us), lba, sectors, op)
    }

    #[test]
    fn first_record_is_random() {
        let t = trace_of(vec![rec(0, 0, 8, OpType::Read)]);
        assert_eq!(classify_sequentiality(&t), vec![Sequentiality::Random]);
    }

    #[test]
    fn empty_trace_classifies_to_empty() {
        assert!(classify_sequentiality(&Trace::new()).is_empty());
    }

    #[test]
    fn sequential_runs_detected() {
        let t = trace_of(vec![
            rec(0, 0, 8, OpType::Read),
            rec(1, 8, 8, OpType::Read),
            rec(2, 16, 8, OpType::Read),
            rec(3, 1000, 8, OpType::Read),
            rec(4, 1008, 8, OpType::Write),
        ]);
        let classes = classify_sequentiality(&t);
        assert_eq!(
            classes,
            vec![
                Sequentiality::Random,
                Sequentiality::Sequential,
                Sequentiality::Sequential,
                Sequentiality::Random,
                Sequentiality::Sequential, // op change does not break LBA adjacency
            ]
        );
    }

    #[test]
    fn partition_covers_every_record_exactly_once() {
        let t = trace_of(vec![
            rec(0, 0, 8, OpType::Read),
            rec(10, 8, 8, OpType::Read),
            rec(20, 100, 16, OpType::Write),
            rec(30, 116, 16, OpType::Write),
            rec(40, 999, 8, OpType::Read),
        ]);
        let g = GroupedTrace::build(&t);
        assert_eq!(g.total_members(), 5);
        let mut seen: Vec<usize> = g.iter().flat_map(|(_, grp)| grp.indices.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn last_record_contributes_no_gap() {
        let t = trace_of(vec![
            rec(0, 0, 8, OpType::Read),
            rec(10, 999, 8, OpType::Read),
        ]);
        let g = GroupedTrace::build(&t);
        let total_gaps: usize = g.iter().map(|(_, grp)| grp.inter_arrivals.len()).sum();
        assert_eq!(total_gaps, t.len() - 1);
    }

    #[test]
    fn by_size_filters_correctly() {
        let t = trace_of(vec![
            rec(0, 0, 8, OpType::Read),
            rec(10, 500, 16, OpType::Read),
            rec(20, 900, 8, OpType::Write),
        ]);
        let g = GroupedTrace::build(&t);
        let read_rand: Vec<u32> = g
            .by_size(Sequentiality::Random, OpType::Read)
            .map(|(s, _)| s)
            .collect();
        assert_eq!(read_rand, vec![8, 16]);
        assert_eq!(
            g.by_size(Sequentiality::Sequential, OpType::Read).count(),
            0
        );
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        // Mixed ops/sizes with sequential runs crossing would-be chunk
        // boundaries.
        let mut recs = Vec::new();
        let mut lba = 0u64;
        for i in 0..10_000u64 {
            let sectors = if i % 7 == 0 { 16 } else { 8 };
            if i % 5 == 0 {
                lba = (lba + 99_991) % 10_000_000; // jump: random
            }
            let op = if i % 3 == 0 {
                OpType::Write
            } else {
                OpType::Read
            };
            recs.push(rec(i * 3, lba, sectors, op));
            lba += u64::from(sectors);
        }
        let t = trace_of(recs);
        let seq = GroupedTrace::build_sequential(&t);
        let par = GroupedTrace::build_parallel(&t);
        assert_eq!(seq, par);
    }

    #[test]
    fn gap_attributed_to_preceding_record() {
        // Record 0 (read, 8 sectors) is followed by a 100us gap; record 1
        // (write, 16) by a 5us gap. Check attribution.
        let t = trace_of(vec![
            rec(0, 0, 8, OpType::Read),
            rec(100, 500, 16, OpType::Write),
            rec(105, 900, 16, OpType::Write),
        ]);
        let g = GroupedTrace::build(&t);
        let read_key = GroupKey {
            seq: Sequentiality::Random,
            op: OpType::Read,
            sectors: 8,
        };
        let grp = g.get(&read_key).unwrap();
        assert_eq!(grp.inter_arrivals, vec![SimDuration::from_usecs(100)]);
    }
}
