//! Error type for trace construction and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while building, validating, or parsing traces.
///
/// # Examples
///
/// ```
/// use tt_trace::TraceError;
///
/// let err = TraceError::parse("bad line");
/// assert!(err.to_string().contains("bad line"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A text or CSV line could not be parsed.
    Parse {
        /// Human-readable description of what failed.
        message: String,
        /// 1-based line number when known.
        line: Option<usize>,
    },
    /// A record violates a trace invariant (e.g. unsorted timestamps when
    /// strict ordering was requested, or a zero-sector request).
    InvalidRecord {
        /// Index of the offending record.
        index: usize,
        /// Description of the violated invariant.
        message: String,
    },
    /// An I/O error while reading or writing a trace file.
    Io(String),
    /// A trace file's format could not be determined or is unsupported.
    Format(String),
}

impl TraceError {
    /// Convenience constructor for a parse error with no line number.
    #[must_use]
    pub fn parse(message: impl Into<String>) -> Self {
        TraceError::Parse {
            message: message.into(),
            line: None,
        }
    }

    /// Convenience constructor for a parse error at a specific line.
    #[must_use]
    pub fn parse_at(message: impl Into<String>, line: usize) -> Self {
        TraceError::Parse {
            message: message.into(),
            line: Some(line),
        }
    }

    /// Convenience constructor for an invalid-record error.
    #[must_use]
    pub fn invalid_record(index: usize, message: impl Into<String>) -> Self {
        TraceError::InvalidRecord {
            index,
            message: message.into(),
        }
    }

    /// Convenience constructor for an unsupported-format error.
    #[must_use]
    pub fn format(message: impl Into<String>) -> Self {
        TraceError::Format(message.into())
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Parse {
                message,
                line: Some(line),
            } => write!(f, "parse error at line {line}: {message}"),
            TraceError::Parse {
                message,
                line: None,
            } => write!(f, "parse error: {message}"),
            TraceError::InvalidRecord { index, message } => {
                write!(f, "invalid record at index {index}: {message}")
            }
            TraceError::Io(message) => write!(f, "trace i/o error: {message}"),
            TraceError::Format(message) => write!(f, "{message}"),
        }
    }
}

impl Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(err: std::io::Error) -> Self {
        TraceError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_numbers() {
        let err = TraceError::parse_at("bad op", 17);
        assert_eq!(err.to_string(), "parse error at line 17: bad op");
    }

    #[test]
    fn display_without_line() {
        assert_eq!(TraceError::parse("oops").to_string(), "parse error: oops");
    }

    #[test]
    fn invalid_record_mentions_index() {
        let err = TraceError::invalid_record(3, "zero sectors");
        assert!(err.to_string().contains("index 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err: TraceError = io.into();
        assert!(matches!(err, TraceError::Io(_)));
    }
}
