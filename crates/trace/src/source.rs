//! Streaming record sources.
//!
//! Multi-month trace files do not fit comfortably in memory as parsed rows.
//! A [`RecordSource`] yields records **chunk by chunk**, so consumers — the
//! CLI loader, the replay engine, statistics passes — can process traces
//! far larger than RAM-comfortable without materialising them whole. The
//! CSV and blkparse readers in [`format`](crate::format) implement it; the
//! in-memory readers (`read_csv`/`read_blk`) are thin drains over the same
//! sources, so streaming and whole-file parsing produce byte-identical
//! traces.

use crate::error::TraceError;
use crate::record::BlockRecord;
use crate::store::TraceStore;
use crate::trace::{Trace, TraceMeta};

/// Default records-per-chunk for streaming consumers.
pub const DEFAULT_CHUNK: usize = 65_536;

/// A streaming producer of block records.
///
/// Implementations yield records in file order; consumers that need arrival
/// order sort once at the end (cheap when the input was already ordered).
/// Returning `0` appended records signals exhaustion.
///
/// `Send` is a supertrait so whole streams can be handed to worker threads
/// — the multi-stream facade fans independent per-stream replays across
/// cores. Sources are plain readers over files or buffers, so this costs
/// implementations nothing.
pub trait RecordSource: Send {
    /// Appends up to `max` records to `out`.
    ///
    /// Returns the number appended; `0` means the source is exhausted.
    /// `out` is *not* cleared — the caller owns buffer reuse.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] on I/O or parse failure.
    fn next_chunk(&mut self, out: &mut Vec<BlockRecord>, max: usize) -> Result<usize, TraceError>;

    /// Descriptive source name (used for trace metadata).
    fn source_name(&self) -> &str;
}

impl<S: RecordSource + ?Sized> RecordSource for &mut S {
    fn next_chunk(&mut self, out: &mut Vec<BlockRecord>, max: usize) -> Result<usize, TraceError> {
        (**self).next_chunk(out, max)
    }

    fn source_name(&self) -> &str {
        (**self).source_name()
    }
}

impl<S: RecordSource + ?Sized> RecordSource for Box<S> {
    fn next_chunk(&mut self, out: &mut Vec<BlockRecord>, max: usize) -> Result<usize, TraceError> {
        (**self).next_chunk(out, max)
    }

    fn source_name(&self) -> &str {
        (**self).source_name()
    }
}

/// Drains a source into a [`Trace`], `chunk` records at a time, sorting by
/// arrival at the end (stable, so tied arrivals keep file order — exactly
/// what the in-memory readers produce).
///
/// # Errors
///
/// Propagates the source's [`TraceError`]s.
///
/// # Examples
///
/// ```
/// use tt_trace::source::{collect_source, VecSource};
/// use tt_trace::{BlockRecord, OpType, TraceMeta, time::SimInstant};
///
/// let recs = vec![BlockRecord::new(SimInstant::from_usecs(1), 0, 8, OpType::Read)];
/// let mut source = VecSource::new(recs.clone());
/// let trace = collect_source(&mut source, TraceMeta::named("demo"), 16)?;
/// assert_eq!(trace.records(), recs.as_slice());
/// # Ok::<(), tt_trace::TraceError>(())
/// ```
pub fn collect_source<S: RecordSource + ?Sized>(
    source: &mut S,
    meta: TraceMeta,
    chunk: usize,
) -> Result<Trace, TraceError> {
    let chunk = chunk.max(1);
    let mut store = TraceStore::new();
    let mut buf: Vec<BlockRecord> = Vec::with_capacity(chunk);
    loop {
        buf.clear();
        let n = source.next_chunk(&mut buf, chunk)?;
        if n == 0 {
            break;
        }
        store.extend(buf.drain(..));
    }
    Ok(Trace::from_store(meta, store))
}

/// A record-at-a-time pull buffer over a [`RecordSource`]: refills one
/// chunk at a time and serves records individually, with lookahead.
///
/// This is the one implementation of the "refill when drained" state
/// machine that record-at-a-time consumers need (the multi-stream merge's
/// per-stream lookahead, the streamed concurrent replay's per-stream op
/// conversion) — the end-of-stream and empty-chunk edge cases live here,
/// once.
#[derive(Debug)]
pub struct ChunkCursor<S> {
    source: S,
    chunk: usize,
    buf: Vec<BlockRecord>,
    pos: usize,
    exhausted: bool,
}

impl<S: RecordSource> ChunkCursor<S> {
    /// Wraps `source`, pulling `chunk` records per refill (clamped to
    /// at least 1).
    pub fn new(source: S, chunk: usize) -> Self {
        ChunkCursor {
            source,
            chunk: chunk.max(1),
            buf: Vec::new(),
            pos: 0,
            exhausted: false,
        }
    }

    /// Changes the refill chunk size for subsequent pulls.
    pub fn set_chunk(&mut self, chunk: usize) {
        self.chunk = chunk.max(1);
    }

    /// The next record, without consuming it; `None` at end-of-stream.
    ///
    /// # Errors
    ///
    /// Propagates the source's [`TraceError`]s.
    pub fn peek(&mut self) -> Result<Option<&BlockRecord>, TraceError> {
        if self.pos >= self.buf.len() && !self.exhausted {
            self.buf.clear();
            self.pos = 0;
            if self.source.next_chunk(&mut self.buf, self.chunk)? == 0 {
                self.exhausted = true;
            }
        }
        Ok(self.buf.get(self.pos))
    }

    /// Consumes and returns the next record; `None` at end-of-stream.
    ///
    /// # Errors
    ///
    /// Propagates the source's [`TraceError`]s.
    pub fn next_record(&mut self) -> Result<Option<BlockRecord>, TraceError> {
        let rec = self.peek()?.copied();
        if rec.is_some() {
            self.pos += 1;
        }
        Ok(rec)
    }
}

/// An in-memory source, for tests and for feeding already-parsed records
/// through streaming consumers.
#[derive(Debug, Clone)]
pub struct VecSource {
    records: std::vec::IntoIter<BlockRecord>,
    name: String,
}

impl VecSource {
    /// Wraps a record vector.
    #[must_use]
    pub fn new(records: Vec<BlockRecord>) -> Self {
        VecSource {
            records: records.into_iter(),
            name: "memory".to_string(),
        }
    }
}

impl RecordSource for VecSource {
    fn next_chunk(&mut self, out: &mut Vec<BlockRecord>, max: usize) -> Result<usize, TraceError> {
        let mut appended = 0;
        while appended < max {
            match self.records.next() {
                Some(rec) => {
                    out.push(rec);
                    appended += 1;
                }
                None => break,
            }
        }
        Ok(appended)
    }

    fn source_name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpType;
    use crate::time::SimInstant;

    fn rec(us: u64) -> BlockRecord {
        BlockRecord::new(SimInstant::from_usecs(us), 0, 8, OpType::Read)
    }

    #[test]
    fn vec_source_chunks_exactly() {
        let mut source = VecSource::new((0..10).map(rec).collect());
        let mut buf = Vec::new();
        assert_eq!(source.next_chunk(&mut buf, 4).unwrap(), 4);
        assert_eq!(source.next_chunk(&mut buf, 4).unwrap(), 4);
        assert_eq!(source.next_chunk(&mut buf, 4).unwrap(), 2);
        assert_eq!(source.next_chunk(&mut buf, 4).unwrap(), 0);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn collect_sorts_unordered_sources() {
        let mut source = VecSource::new(vec![rec(30), rec(10), rec(20)]);
        let trace = collect_source(&mut source, TraceMeta::default(), 2).unwrap();
        let arrivals: Vec<u64> = trace
            .columns()
            .arrivals()
            .iter()
            .map(|a| a.as_nanos())
            .collect();
        assert_eq!(arrivals, vec![10_000, 20_000, 30_000]);
    }

    #[test]
    fn chunk_cursor_peeks_and_pops_across_refills() {
        let mut cur = ChunkCursor::new(VecSource::new((0..10).map(rec).collect()), 3);
        for i in 0..10u64 {
            assert_eq!(
                cur.peek().unwrap().map(|r| r.arrival),
                Some(SimInstant::from_usecs(i))
            );
            // Peeking is idempotent; popping advances.
            assert_eq!(
                cur.peek().unwrap().map(|r| r.arrival),
                Some(SimInstant::from_usecs(i))
            );
            assert_eq!(
                cur.next_record().unwrap().map(|r| r.arrival),
                Some(SimInstant::from_usecs(i))
            );
        }
        assert_eq!(cur.peek().unwrap(), None);
        assert_eq!(cur.next_record().unwrap(), None);
    }

    #[test]
    fn chunk_size_does_not_change_result() {
        let recs: Vec<BlockRecord> = (0..100).map(|i| rec(i * 3 % 70)).collect();
        let expect = Trace::from_records(TraceMeta::default(), recs.clone());
        for chunk in [1, 7, 100, 1000] {
            let mut source = VecSource::new(recs.clone());
            let trace = collect_source(&mut source, TraceMeta::default(), chunk).unwrap();
            assert_eq!(trace, expect, "chunk {chunk}");
        }
    }
}
