#![forbid(unsafe_code)]
//! # tt-par — deterministic parallel helpers
//!
//! The trace pipeline fans work out across CPU cores (per-chunk grouping,
//! per-group CDF analysis). The usual crate for that is `rayon`, which is
//! unavailable in the offline build environment, so this crate provides the
//! two shapes the pipeline needs on top of `std::thread::scope`:
//!
//! * [`par_map`] — dynamic (work-stealing-style) map over a slice, for
//!   uneven per-item costs such as per-group CDF analysis;
//! * [`par_chunk_map`] — static contiguous index ranges, for columnar
//!   single-pass scans such as trace grouping.
//!
//! Both return results **in input order**, so parallel and sequential runs
//! of a pure function produce bit-identical output. The worker count comes
//! from [`set_threads`] / the `TT_THREADS` environment variable, defaulting
//! to the machine's available parallelism; `set_threads(1)` degrades every
//! helper to a plain sequential loop (no threads spawned).
//!
//! The [`bounded`] module adds the third shape the fused pipeline executor
//! needs: a bounded SPSC channel ([`bounded::channel`]) whose capacity is
//! the backpressure bound between pipelined stages. The [`telemetry`]
//! module is the observability side of that executor: per-channel
//! traffic/wait counters ([`telemetry::ChannelStats`]) and the
//! [`telemetry::FlightRecorder`] that assembles per-stage
//! busy/send-wait/recv-wait timing into a flight log.
//!
//! ```
//! let squares = tt_par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bounded;
pub mod telemetry;

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global worker-count override; 0 means "auto".
static THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// `true` on threads spawned by this crate's helpers.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// `true` when the current thread is a worker spawned by one of this
/// crate's helpers. Library code that *could* fan out internally (e.g.
/// the parallel ECDF sort) consults this to stay sequential inside an
/// outer fan-out — nesting would multiply the thread count to
/// `threads()²` with no extra cores to run them.
#[must_use]
pub fn in_worker() -> bool {
    IN_WORKER.with(std::cell::Cell::get)
}

/// Marks the current thread as a helper-spawned worker for `f`'s duration
/// (scoped-thread workers die with the scope, so no reset is needed).
fn as_worker<U>(f: impl FnOnce() -> U) -> U {
    IN_WORKER.with(|w| w.set(true));
    f()
}

/// Sets the worker count used by every helper in this crate.
///
/// `0` restores the default (the `TT_THREADS` environment variable when
/// set, otherwise [`std::thread::available_parallelism`]). `1` makes every
/// helper run sequentially on the calling thread.
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// The effective worker count.
#[must_use]
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => std::env::var("TT_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            }),
        n => n,
    }
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Items are claimed dynamically (one atomic fetch per item), so uneven
/// per-item costs balance across workers. `f` must be pure for the
/// parallel/sequential outputs to be identical — which they then are,
/// bit for bit, because each output slot is written exactly once from its
/// own input.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = threads().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, U)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    as_worker(|| {
                        let mut local: Vec<(usize, U)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            local.push((i, f(&items[i])));
                        }
                        local
                    })
                })
            })
            .collect();
        buckets = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect();
    });

    let mut slots: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    for (i, value) in buckets.into_iter().flatten() {
        slots[i] = Some(value);
    }
    // fetch_add hands each index to exactly one worker, so every slot is
    // filled; a None here (impossible) would surface as a short output,
    // which the property tests would catch.
    slots.into_iter().flatten().collect()
}

/// Maps `f` over owned `items` in parallel, returning results in input
/// order — [`par_map`] for values the workers must *consume* rather than
/// borrow (per-partition device snapshots, per-stream pipelines).
///
/// Each item sits in its own mutex-guarded slot and is taken exactly once
/// by whichever worker claims its index, so `T` only needs `Send`, not
/// `Sync`. Everything else matches [`par_map`]: dynamic claiming, ordered
/// output, a plain sequential loop at one worker.
pub fn par_map_owned<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = threads().min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|item| std::sync::Mutex::new(Some(item)))
        .collect();
    par_map(&slots, |slot| {
        let item = slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        // lint:allow(panic) -- par_map hands index i to exactly one worker, so the take() above cannot observe an emptied slot
        let item = item.unwrap_or_else(|| unreachable!("slot taken twice"));
        f(item)
    })
}

/// Splits `0..len` into at most `parts` contiguous ranges of near-equal
/// size, in ascending order. Returns no ranges for `len == 0`.
#[must_use]
pub fn split_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(len);
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Applies `f` to contiguous index ranges covering `0..len`, in parallel,
/// returning per-range results in range order.
///
/// The range count equals the worker count (capped so every range has at
/// least `min_chunk` items), making this the right shape for columnar
/// scans that carry per-chunk state.
pub fn par_chunk_map<U, F>(len: usize, min_chunk: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(Range<usize>) -> U + Sync,
{
    let min_chunk = min_chunk.max(1);
    let workers = threads().min(len.div_ceil(min_chunk)).max(1);
    let ranges = split_ranges(len, workers);
    if workers <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    let mut out: Vec<U> = Vec::with_capacity(ranges.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| scope.spawn(|| as_worker(|| f(range))))
            .collect();
        for handle in handles {
            out.push(
                handle
                    .join()
                    .unwrap_or_else(|p| std::panic::resume_unwind(p)),
            );
        }
    });
    out
}

/// Applies `f` to disjoint contiguous chunks of `items`, in parallel, the
/// mutable mirror of [`par_chunk_map`]: the chunk count equals the worker
/// count (capped so every chunk has at least `min_chunk` items). Returns
/// the chunk boundaries it used, in ascending order.
///
/// Because the chunks are disjoint `&mut` splits of one slice, each worker
/// owns its region exclusively — no locks, no copies — and a pure `f`
/// (per-chunk, independent of the others) produces bit-identical slices at
/// any worker count. This is the shape the parallel ECDF sort uses: sort
/// each chunk in place, then merge the returned ranges. The boundaries
/// are returned (not recomputed by the caller) so a concurrent
/// [`set_threads`] between the apply and a follow-up pass can never
/// desynchronise them.
pub fn par_chunk_apply<T, F>(items: &mut [T], min_chunk: usize, f: F) -> Vec<Range<usize>>
where
    T: Send,
    F: Fn(&mut [T]) + Sync,
{
    let min_chunk = min_chunk.max(1);
    let workers = threads().min(items.len().div_ceil(min_chunk)).max(1);
    if workers <= 1 {
        if items.is_empty() {
            return Vec::new();
        }
        f(items);
        return split_ranges(items.len(), 1);
    }
    let ranges = split_ranges(items.len(), workers);
    std::thread::scope(|scope| {
        let mut rest = items;
        let mut handles = Vec::with_capacity(ranges.len());
        for range in &ranges {
            let (chunk, tail) = rest.split_at_mut(range.len());
            rest = tail;
            handles.push(scope.spawn(|| as_worker(|| f(chunk))));
        }
        for handle in handles {
            handle
                .join()
                .unwrap_or_else(|p| std::panic::resume_unwind(p));
        }
    });
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        let par = par_map(&items, |&x| x * 3 + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(par_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_owned_consumes_in_order() {
        // A Send-but-not-Sync item type (the whole point of the owned map).
        let items: Vec<std::cell::Cell<u64>> = (0..500).map(std::cell::Cell::new).collect();
        for threads in [1usize, 4] {
            set_threads(threads);
            let out = par_map_owned(items.clone(), |c| c.get() * 2 + 1);
            assert_eq!(
                out,
                (0..500).map(|x| x * 2 + 1).collect::<Vec<u64>>(),
                "{threads}"
            );
        }
        set_threads(0);
    }

    #[test]
    fn split_ranges_cover_exactly() {
        for len in [0usize, 1, 7, 100, 101] {
            for parts in [1usize, 2, 3, 8] {
                let ranges = split_ranges(len, parts);
                let mut covered = 0;
                let mut prev_end = 0;
                for r in &ranges {
                    assert_eq!(r.start, prev_end, "contiguous");
                    covered += r.len();
                    prev_end = r.end;
                }
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn chunk_map_matches_sequential() {
        let data: Vec<u64> = (0..10_000).collect();
        let sums = par_chunk_map(data.len(), 16, |r| data[r].iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn single_thread_mode_is_sequential() {
        set_threads(1);
        let out = par_map(&[1u64, 2, 3], |&x| x);
        assert_eq!(out, vec![1, 2, 3]);
        set_threads(0);
    }

    #[test]
    fn chunk_apply_covers_every_item_once() {
        for threads in [1usize, 2, 7] {
            set_threads(threads);
            let mut data: Vec<u64> = (0..10_000).collect();
            par_chunk_apply(&mut data, 16, |chunk| {
                for x in chunk {
                    *x += 1;
                }
            });
            assert_eq!(data, (1..=10_000).collect::<Vec<u64>>(), "{threads}");
        }
        set_threads(0);
    }

    #[test]
    fn helper_threads_are_flagged_as_workers() {
        set_threads(4);
        let flags = par_map(&[(); 8], |()| in_worker());
        assert!(flags.iter().all(|&f| f), "spawned workers must be flagged");
        set_threads(0);
        // The calling thread is never a worker, even after a fan-out.
        assert!(!in_worker());
    }

    #[test]
    fn chunk_apply_handles_empty_and_tiny() {
        par_chunk_apply(&mut [] as &mut [u64], 16, |_| {});
        let mut one = [5u64];
        par_chunk_apply(&mut one, 16, |c| c[0] *= 2);
        assert_eq!(one, [10]);
    }

    #[test]
    fn uneven_work_balances() {
        // Heavier items at the front; order must still hold.
        let items: Vec<u64> = (0..64).rev().collect();
        let out = par_map(&items, |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }
}
