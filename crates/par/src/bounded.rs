//! A **bounded SPSC channel** — the backpressure primitive behind the
//! fused `Pipeline` executor.
//!
//! The fused executor runs each transform stage as a worker thread and
//! connects consecutive stages with one of these channels, carrying one
//! *chunk* of records per message. The bound is the whole point: when the
//! downstream stage falls behind, [`Sender::send`] blocks instead of
//! buffering, so a `reconstruct → replay` chain holds at most
//! `capacity` in-flight chunks between stages — never a materialised
//! intermediate trace. The usual crate for this is `crossbeam-channel`,
//! which is unavailable in the offline build environment; a `Mutex` +
//! `Condvar` ring is entirely adequate for chunk-granularity traffic
//! (thousands of messages per run, not millions).
//!
//! Disconnect semantics mirror `std::sync::mpsc`:
//!
//! * dropping the [`Receiver`] makes every later [`Sender::send`] return
//!   the rejected value as `Err` (the producer learns the consumer is
//!   gone and stops);
//! * dropping the [`Sender`] lets the receiver drain what was queued and
//!   then observe end-of-stream (`recv() == None`).
//!
//! A channel can be **instrumented** with one or more
//! [`ChannelStats`] via
//! [`channel_instrumented`]: each send bumps the chunk count and the
//! **peak queue depth**, and time a side spends *actually parked* on the
//! condvar is credited as send-wait / recv-wait (the uncontended fast
//! path is never timed — see [`crate::telemetry`] for the recording
//! contract). [`ChannelProbe`] is the thin, stable view over one such
//! stats block that tests and the bench use to *prove* the bound held
//! (peak ≤ capacity while total chunks ran far beyond it).
//!
//! ```
//! let (tx, rx) = tt_par::bounded::channel::<u32>(2);
//! std::thread::scope(|scope| {
//!     scope.spawn(move || {
//!         for i in 0..100 {
//!             tx.send(i).unwrap();
//!         }
//!     });
//!     let got: Vec<u32> = rx.iter().collect();
//!     assert_eq!(got, (0..100).collect::<Vec<u32>>());
//! });
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::telemetry::ChannelStats;

/// The stable observability view over one channel's
/// [`ChannelStats`] block.
///
/// One probe may be attached to several channels (the fused executor
/// attaches the same probe to every stage boundary); `peak_depth` is then
/// the maximum over all of them — still bounded by the common capacity.
/// Since the telemetry module landed this is a thin view: the counters
/// live in the shared stats block ([`ChannelProbe::stats`]), and the
/// flight recorder reads the very same numbers.
#[derive(Debug, Default)]
pub struct ChannelProbe {
    stats: Arc<ChannelStats>,
}

impl ChannelProbe {
    /// A fresh probe with zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        ChannelProbe::default()
    }

    /// The deepest the queue ever got, in messages. With the fused
    /// executor this is the peak number of in-flight chunks buffered at
    /// any stage boundary — the "never a second trace" witness.
    #[must_use]
    pub fn peak_depth(&self) -> usize {
        self.stats.peak_depth()
    }

    /// Total messages sent through the probed channel(s).
    #[must_use]
    pub fn chunks(&self) -> usize {
        self.stats.chunks()
    }

    /// The underlying shared counter block, for attaching the probe to a
    /// channel via [`channel_instrumented`].
    #[must_use]
    pub fn stats(&self) -> Arc<ChannelStats> {
        Arc::clone(&self.stats)
    }
}

/// State shared by the two endpoints.
struct Shared<T> {
    queue: Mutex<Inner<T>>,
    /// Signalled when the queue gains a message or the sender disconnects.
    not_empty: Condvar,
    /// Signalled when the queue loses a message or the receiver disconnects.
    not_full: Condvar,
    capacity: usize,
    /// Counter blocks to update; empty for an uninstrumented channel.
    stats: Vec<Arc<ChannelStats>>,
}

impl<T> Shared<T> {
    /// Credits time parked on a full queue (no-op when never parked).
    fn credit_send_wait(&self, parked: Option<Instant>) {
        if let Some(parked) = parked {
            let ns = u64::try_from(parked.elapsed().as_nanos()).unwrap_or(u64::MAX);
            for stats in &self.stats {
                stats.add_send_wait(ns);
            }
        }
    }

    /// Credits time parked on an empty queue (no-op when never parked).
    fn credit_recv_wait(&self, parked: Option<Instant>) {
        if let Some(parked) = parked {
            let ns = u64::try_from(parked.elapsed().as_nanos()).unwrap_or(u64::MAX);
            for stats in &self.stats {
                stats.add_recv_wait(ns);
            }
        }
    }
}

struct Inner<T> {
    items: VecDeque<T>,
    sender_alive: bool,
    receiver_alive: bool,
}

/// The sending half of a [`channel`]; blocks on a full queue.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a [`channel`]; blocks on an empty queue.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender")
            .field("capacity", &self.shared.capacity)
            .finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver")
            .field("capacity", &self.shared.capacity)
            .finish_non_exhaustive()
    }
}

/// Creates a bounded SPSC channel holding at most `capacity` messages
/// (clamped to at least 1).
#[must_use]
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    channel_instrumented(capacity, Vec::new())
}

/// [`channel`] with an optional [`ChannelProbe`] recording traffic and
/// peak depth.
#[must_use]
pub fn channel_probed<T>(
    capacity: usize,
    probe: Option<Arc<ChannelProbe>>,
) -> (Sender<T>, Receiver<T>) {
    channel_instrumented(capacity, probe.map(|p| vec![p.stats()]).unwrap_or_default())
}

/// [`channel`] updating every given [`ChannelStats`] block: each send
/// records the chunk and the post-push queue depth, and time either side
/// spends parked on the condvar is credited as send-/recv-wait. An empty
/// `stats` vec makes this identical to [`channel`] (no timing, no
/// counting — the fast path stays untimed either way).
#[must_use]
pub fn channel_instrumented<T>(
    capacity: usize,
    stats: Vec<Arc<ChannelStats>>,
) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(Inner {
            items: VecDeque::new(),
            sender_alive: true,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity: capacity.max(1),
        stats,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while the queue is at capacity.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when the receiver has been dropped — the
    /// producer should stop; nothing it sends can be observed any more.
    ///
    /// A poisoned channel mutex (a peer thread panicked mid-operation) is
    /// recovered, not propagated: the queue's invariants are maintained
    /// before every await point, so the inner state is always coherent.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut inner = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Stamped the first time we actually park; blocked time is the
        // whole span from first park to completion, spurious wakes
        // included (we were blocked throughout).
        let mut parked: Option<Instant> = None;
        loop {
            if !inner.receiver_alive {
                drop(inner);
                self.shared.credit_send_wait(parked);
                return Err(value);
            }
            if inner.items.len() < self.shared.capacity {
                inner.items.push_back(value);
                let depth = inner.items.len();
                for stats in &self.shared.stats {
                    stats.on_send(depth);
                }
                drop(inner);
                self.shared.credit_send_wait(parked);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            if parked.is_none() && !self.shared.stats.is_empty() {
                // lint:allow(determinism) -- blocked-time telemetry stamp; taken only when a recorder is attached and never feeds the data path
                parked = Some(Instant::now());
            }
            inner = self
                .shared
                .not_full
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.sender_alive = false;
        drop(inner);
        self.shared.not_empty.notify_one();
    }
}

impl<T> Receiver<T> {
    /// Receives the next message, blocking while the queue is empty.
    /// Returns `None` once the sender is gone **and** the queue has
    /// drained — the clean end-of-stream.
    ///
    /// A poisoned channel mutex is recovered, not propagated, as in
    /// [`Sender::send`].
    pub fn recv(&self) -> Option<T> {
        let mut inner = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut parked: Option<Instant> = None;
        loop {
            if let Some(value) = inner.items.pop_front() {
                drop(inner);
                self.shared.credit_recv_wait(parked);
                self.shared.not_full.notify_one();
                return Some(value);
            }
            if !inner.sender_alive {
                drop(inner);
                self.shared.credit_recv_wait(parked);
                return None;
            }
            if parked.is_none() && !self.shared.stats.is_empty() {
                // lint:allow(determinism) -- blocked-time telemetry stamp; taken only when a recorder is attached and never feeds the data path
                parked = Some(Instant::now());
            }
            inner = self
                .shared
                .not_empty
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// A blocking iterator over the stream: yields until end-of-stream.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(|| self.recv())
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.receiver_alive = false;
        // Unblock a producer parked on a full queue; anything still queued
        // is dropped here with the receiver.
        inner.items.clear();
        drop(inner);
        self.shared.not_full.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn transfers_in_order_across_threads() {
        let (tx, rx) = channel::<u64>(3);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..10_000 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u64> = rx.iter().collect();
            assert_eq!(got, (0..10_000).collect::<Vec<u64>>());
        });
    }

    #[test]
    fn capacity_bounds_the_queue() {
        let probe = Arc::new(ChannelProbe::new());
        let (tx, rx) = channel_probed::<u64>(4, Some(Arc::clone(&probe)));
        std::thread::scope(|scope| {
            scope.spawn(move || {
                // A fast producer against a slow consumer: the bound, not
                // the consumer's pace, must cap the queue.
                for i in 0..500 {
                    tx.send(i).unwrap();
                }
            });
            let mut n = 0;
            while rx.recv().is_some() {
                n += 1;
                if n % 16 == 0 {
                    std::thread::yield_now();
                }
            }
            assert_eq!(n, 500);
        });
        assert_eq!(probe.chunks(), 500);
        assert!(
            probe.peak_depth() <= 4,
            "peak {} exceeded capacity",
            probe.peak_depth()
        );
        assert!(probe.peak_depth() >= 1);
    }

    #[test]
    fn dropped_receiver_rejects_sends() {
        let (tx, rx) = channel::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(7));
    }

    #[test]
    fn dropped_receiver_unblocks_a_full_sender() {
        let (tx, rx) = channel::<u32>(1);
        tx.send(1).unwrap();
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || tx.send(2));
            std::thread::sleep(Duration::from_millis(10));
            drop(rx);
            assert_eq!(handle.join().unwrap(), Err(2));
        });
    }

    #[test]
    fn dropped_sender_drains_then_ends() {
        let (tx, rx) = channel::<u32>(8);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let (tx, rx) = channel::<u32>(0);
        tx.send(9).unwrap();
        assert_eq!(rx.recv(), Some(9));
    }

    #[test]
    fn blocked_sender_accrues_send_wait() {
        let stats = Arc::new(ChannelStats::new());
        let (tx, rx) = channel_instrumented::<u32>(1, vec![Arc::clone(&stats)]);
        tx.send(1).unwrap();
        std::thread::scope(|scope| {
            // The queue is full: this send parks until the recv below.
            let handle = scope.spawn(move || tx.send(2));
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Some(1));
            handle.join().unwrap().unwrap();
        });
        assert_eq!(rx.recv(), Some(2));
        assert!(
            stats.send_wait() >= Duration::from_millis(10),
            "send_wait {:?} too small for a ~20ms park",
            stats.send_wait()
        );
        // The receiver never parked: both recvs found items queued.
        assert_eq!(stats.recv_wait(), Duration::ZERO);
    }

    #[test]
    fn starved_receiver_accrues_recv_wait() {
        let stats = Arc::new(ChannelStats::new());
        let (tx, rx) = channel_instrumented::<u32>(4, vec![Arc::clone(&stats)]);
        std::thread::scope(|scope| {
            // The queue is empty: this recv parks until the send below.
            let handle = scope.spawn(move || rx.recv());
            std::thread::sleep(Duration::from_millis(20));
            tx.send(5).unwrap();
            assert_eq!(handle.join().unwrap(), Some(5));
        });
        assert!(
            stats.recv_wait() >= Duration::from_millis(10),
            "recv_wait {:?} too small for a ~20ms park",
            stats.recv_wait()
        );
        assert_eq!(stats.send_wait(), Duration::ZERO);
    }

    #[test]
    fn uninstrumented_channel_records_nothing() {
        // A plain channel carries no stats; the probe-less constructor
        // must behave identically (this is the zero-overhead baseline).
        let (tx, rx) = channel_probed::<u32>(2, None);
        tx.send(1).unwrap();
        assert_eq!(rx.recv(), Some(1));
    }
}
