//! # Pipeline flight recorder — per-stage timing telemetry
//!
//! The fused pipeline executor runs transform stages as worker threads
//! chained by bounded channels ([`crate::bounded`]). End-to-end wall
//! clock says *that* a chain is slow; it cannot say *which stage* — or
//! whether the time went into real work, waiting for a full downstream
//! queue, or starving on an empty upstream one. This module is the
//! missing per-stage story: a [`FlightRecorder`] collects one track per
//! stage and assembles them into a [`FlightLog`] with, per stage,
//!
//! * **busy** — time spent doing the stage's own work,
//! * **send-wait** — time blocked because the *downstream* queue was at
//!   capacity (the stage outruns its consumer),
//! * **recv-wait** — time blocked because the *upstream* queue was empty
//!   (the stage starves on its producer),
//!
//! plus record/chunk counts and the queue **high-water mark** (peak
//! in-flight depth, ≤ the channel capacity by construction).
//!
//! # The recording contract
//!
//! **Where the clock boundaries sit.** Wait times are measured inside
//! the bounded channel, with a monotonic clock ([`std::time::Instant`]),
//! and *only around actual blocking*: the clock starts when a
//! send/receive first finds the queue full/empty and parks on the
//! condvar, and stops when the operation completes. The uncontended fast
//! path — lock, push/pop, notify — is never timed, which is what keeps
//! the recorder's overhead within its **<5% budget** (enforced by the
//! `tt-bench` recorder lane). Stage wall clocks are taken around the
//! whole stage run on its worker thread; `busy` is derived as
//! `wall − send_wait − recv_wait`, so per stage
//! `busy + send_wait + recv_wait ≤ wall` always holds.
//!
//! **Why outputs are bit-identical with the recorder on.** Recording
//! only *observes*: counters are relaxed atomics bumped at channel
//! boundaries, stage tracks are appended to a mutex'd list, and nothing
//! about scheduling, chunking, ordering, or channel capacity changes.
//! The records that flow through an instrumented channel are the same
//! `Vec`s, in the same order, as through a bare one (property-tested in
//! the workspace: recorder-on and recorder-off runs compare equal down
//! to the serialised bytes).
//!
//! # Example
//!
//! A recorder is driven by whoever runs the stages (in the workspace:
//! the `Pipeline` executor); here the stages are simulated by hand to
//! show the assembly contract:
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use tt_par::telemetry::{ChannelStats, FlightRecorder};
//!
//! let recorder = FlightRecorder::new();
//! recorder.begin();
//! recorder.set_knobs(1024, 4);
//!
//! // One stage boundary: the producer's output, the consumer's input.
//! let boundary = Arc::new(ChannelStats::new());
//! boundary.on_send(3);        // a chunk crossed at queue depth 3
//! boundary.add_send_wait(250_000); // the producer blocked 250µs once
//!
//! recorder.record_stage(
//!     1, "produce", Duration::from_millis(5), 10_000,
//!     None, Some(Arc::clone(&boundary)),
//! );
//! recorder.record_stage(
//!     2, "consume", Duration::from_millis(5), 10_000,
//!     Some(boundary), None,
//! );
//! recorder.finish();
//!
//! let log = recorder.flight_log();
//! assert_eq!(log.stages.len(), 2);
//! assert_eq!(log.stages[0].stage, "produce");
//! assert_eq!(log.stages[0].send_wait, Duration::from_micros(250));
//! for stage in &log.stages {
//!     assert!(stage.busy + stage.send_wait + stage.recv_wait <= stage.wall);
//!     assert!(stage.queue_high_water <= 4);
//! }
//! // Machine-readable (one line of JSON) and human renders:
//! assert!(log.to_json().contains("\"stage\":\"produce\""));
//! assert!(log.render().contains("consume"));
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Traffic and wait-time counters for one instrumented channel
/// (shareable, lock-free relaxed-atomic updates).
///
/// One `ChannelStats` sits at one stage boundary: its **send** side
/// belongs to the producer stage (time blocked on a full queue), its
/// **recv** side to the consumer stage (time blocked on an empty one).
/// The recording methods are normally driven by
/// [`crate::bounded::channel_instrumented`]; they are public so other
/// executors can reuse the same assembly contract.
#[derive(Debug, Default)]
pub struct ChannelStats {
    chunks: AtomicUsize,
    peak: AtomicUsize,
    send_wait_ns: AtomicU64,
    recv_wait_ns: AtomicU64,
}

impl ChannelStats {
    /// A fresh set of zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        ChannelStats::default()
    }

    /// Total messages (chunks) sent through the channel.
    #[must_use]
    pub fn chunks(&self) -> usize {
        self.chunks.load(Ordering::Relaxed)
    }

    /// The deepest the queue ever got, in messages — the high-water
    /// mark, ≤ the channel capacity by construction.
    #[must_use]
    pub fn peak_depth(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Cumulative time senders spent blocked on a full queue.
    #[must_use]
    pub fn send_wait(&self) -> Duration {
        Duration::from_nanos(self.send_wait_ns.load(Ordering::Relaxed))
    }

    /// Cumulative time receivers spent blocked on an empty queue.
    #[must_use]
    pub fn recv_wait(&self) -> Duration {
        Duration::from_nanos(self.recv_wait_ns.load(Ordering::Relaxed))
    }

    /// Records one message sent at queue depth `depth` (post-push).
    pub fn on_send(&self, depth: usize) {
        self.chunks.fetch_add(1, Ordering::Relaxed);
        self.peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Credits `ns` nanoseconds of blocked-on-send (full queue) time.
    pub fn add_send_wait(&self, ns: u64) {
        self.send_wait_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Credits `ns` nanoseconds of blocked-on-recv (empty queue) time.
    pub fn add_recv_wait(&self, ns: u64) {
        self.recv_wait_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

/// One recorded stage run, as reported by its worker.
struct StageTrack {
    /// Ordering key: stages may finish (and record) out of order.
    index: usize,
    label: String,
    wall: Duration,
    records: usize,
    /// The channel the stage consumed from (its recv-waits), if any.
    input: Option<Arc<ChannelStats>>,
    /// The channel the stage produced into (its send-waits), if any.
    output: Option<Arc<ChannelStats>>,
}

#[derive(Default)]
struct RecorderInner {
    started: Option<Instant>,
    wall: Duration,
    chunk_size: usize,
    channel_capacity: usize,
    tracks: Vec<StageTrack>,
}

/// Collects per-stage timing tracks from an executor run and assembles
/// the [`FlightLog`]. Shareable across the executor's worker threads via
/// `Arc`; see the [module docs](self) for the recording contract.
#[derive(Default)]
pub struct FlightRecorder {
    inner: Mutex<RecorderInner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f.debug_struct("FlightRecorder")
            .field("stages", &inner.tracks.len())
            .field("wall", &inner.wall)
            .finish()
    }
}

impl FlightRecorder {
    /// A fresh, empty recorder.
    #[must_use]
    pub fn new() -> Self {
        FlightRecorder::default()
    }

    /// Starts a run: clears any previously recorded tracks and stamps
    /// the wall-clock start. One recorder can therefore be attached to
    /// several consecutive runs; the log always describes the last one.
    pub fn begin(&self) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *inner = RecorderInner {
            started: Some(Instant::now()),
            ..RecorderInner::default()
        };
    }

    /// Records the run's knobs — the chunk size records stream in and
    /// the bounded-channel capacity between fused stages — once they are
    /// final (autotuning may pick them after the run began).
    pub fn set_knobs(&self, chunk_size: usize, channel_capacity: usize) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.chunk_size = chunk_size;
        inner.channel_capacity = channel_capacity;
    }

    /// Records one stage run. `index` orders the stages in the log
    /// (workers may finish out of order); `input`/`output` attach the
    /// stage-boundary channels whose recv-/send-waits belong to this
    /// stage. Safe to call from any thread.
    pub fn record_stage(
        &self,
        index: usize,
        label: &str,
        wall: Duration,
        records: usize,
        input: Option<Arc<ChannelStats>>,
        output: Option<Arc<ChannelStats>>,
    ) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.tracks.push(StageTrack {
            index,
            label: label.to_string(),
            wall,
            records,
            input,
            output,
        });
    }

    /// Ends the run, stamping the total wall clock (a no-op without a
    /// preceding [`FlightRecorder::begin`]).
    pub fn finish(&self) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(started) = inner.started.take() {
            inner.wall = started.elapsed();
        }
    }

    /// `true` when no stage has recorded since the last
    /// [`FlightRecorder::begin`] (or ever).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .tracks
            .is_empty()
    }

    /// Assembles the recorded tracks into the [`FlightLog`], deriving
    /// per-stage `busy` from the wall clock and the channel wait
    /// counters (see the [module docs](self) for the derivation).
    #[must_use]
    pub fn flight_log(&self) -> FlightLog {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut tracks: Vec<&StageTrack> = inner.tracks.iter().collect();
        tracks.sort_by_key(|t| t.index);
        let stages = tracks
            .into_iter()
            .map(|track| {
                // Clamp the waits into the stage's wall clock so the
                // derived busy time is never negative: the channel
                // counters are cumulative and (for shared boundaries)
                // can slightly overlap the worker's own wall window.
                let wall = track.wall;
                let send_wait = track
                    .output
                    .as_ref()
                    .map_or(Duration::ZERO, |c| c.send_wait())
                    .min(wall);
                let recv_wait = track
                    .input
                    .as_ref()
                    .map_or(Duration::ZERO, |c| c.recv_wait())
                    .min(wall - send_wait);
                let busy = wall - send_wait - recv_wait;
                let chunks = track
                    .output
                    .as_ref()
                    .or(track.input.as_ref())
                    .map_or(0, |c| c.chunks());
                let queue_high_water = track
                    .input
                    .iter()
                    .chain(track.output.iter())
                    .map(|c| c.peak_depth())
                    .max()
                    .unwrap_or(0);
                StageReport {
                    stage: track.label.clone(),
                    wall,
                    busy,
                    send_wait,
                    recv_wait,
                    records: track.records,
                    chunks,
                    queue_high_water,
                }
            })
            .collect();
        FlightLog {
            wall: inner.wall,
            chunk_size: inner.chunk_size,
            channel_capacity: inner.channel_capacity,
            stages,
        }
    }
}

/// One stage's line in the [`FlightLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReport {
    /// Stage label (`"load"`, `"reconstruct"`, `"replay"`, `"write"`, a
    /// terminal name, …).
    pub stage: String,
    /// Wall clock of the whole stage run on its worker.
    pub wall: Duration,
    /// Time doing the stage's own work: `wall − send_wait − recv_wait`.
    pub busy: Duration,
    /// Time blocked sending into a full downstream queue.
    pub send_wait: Duration,
    /// Time blocked receiving from an empty upstream queue.
    pub recv_wait: Duration,
    /// Records the stage emitted.
    pub records: usize,
    /// Chunks that crossed the stage's boundary channel.
    pub chunks: usize,
    /// Peak in-flight queue depth at the stage's boundary channel(s) —
    /// ≤ the channel capacity by construction.
    pub queue_high_water: usize,
}

impl StageReport {
    /// Fraction of the stage's wall clock spent blocked on channels
    /// (send-wait + recv-wait over wall; `0.0` for an instant stage).
    #[must_use]
    pub fn stall_ratio(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            return 0.0;
        }
        (self.send_wait + self.recv_wait).as_secs_f64() / wall
    }
}

/// The assembled per-stage timing report of one executor run.
///
/// Render with [`FlightLog::to_json`] (one line, machine-readable — the
/// shape `tt-cli --timings` and tt-serve's `?timings=1` emit) or
/// [`FlightLog::render`] (one human line per stage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightLog {
    /// Total run wall clock ([`FlightRecorder::begin`] to
    /// [`FlightRecorder::finish`]).
    pub wall: Duration,
    /// Records per streamed chunk the run used.
    pub chunk_size: usize,
    /// Bounded-channel capacity (in chunks) between fused stages.
    pub channel_capacity: usize,
    /// Per-stage reports, in stage order.
    pub stages: Vec<StageReport>,
}

/// Escapes a label for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a duration for the human report: `1.234s` / `56.7ms` /
/// `890us` / `0`.
fn human(d: Duration) -> String {
    let us = d.as_micros();
    if us == 0 {
        "0".to_string()
    } else if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.3}s", us as f64 / 1_000_000.0)
    }
}

impl FlightLog {
    /// The machine-readable render: one line of JSON, times in integer
    /// microseconds (`*_us`), in the same hand-rolled style as the
    /// bench's `TT_BENCH_JSON` report.
    #[must_use]
    pub fn to_json(&self) -> String {
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|s| {
                format!(
                    "{{\"stage\":\"{}\",\"wall_us\":{},\"busy_us\":{},\"send_wait_us\":{},\
                     \"recv_wait_us\":{},\"records\":{},\"chunks\":{},\"queue_high_water\":{}}}",
                    json_escape(&s.stage),
                    s.wall.as_micros(),
                    s.busy.as_micros(),
                    s.send_wait.as_micros(),
                    s.recv_wait.as_micros(),
                    s.records,
                    s.chunks,
                    s.queue_high_water,
                )
            })
            .collect();
        format!(
            "{{\"wall_us\":{},\"chunk_size\":{},\"channel_capacity\":{},\"stages\":[{}]}}",
            self.wall.as_micros(),
            self.chunk_size,
            self.channel_capacity,
            stages.join(",")
        )
    }

    /// The human render: a header plus one line per stage.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} stages, wall {}, chunk {}, channel capacity {}\n",
            self.stages.len(),
            human(self.wall),
            self.chunk_size,
            self.channel_capacity,
        );
        let width = self
            .stages
            .iter()
            .map(|s| s.stage.len())
            .max()
            .unwrap_or(0)
            .max(5);
        for s in &self.stages {
            out.push_str(&format!(
                "{:<width$}  wall {:>8}  busy {:>8} ({:>3.0}%)  send-wait {:>8}  \
                 recv-wait {:>8}  records {:>9}  chunks {:>6}  high-water {}\n",
                s.stage,
                human(s.wall),
                human(s.busy),
                (1.0 - s.stall_ratio()) * 100.0,
                human(s.send_wait),
                human(s.recv_wait),
                s.records,
                s.chunks,
                s.queue_high_water,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waits_clamp_into_the_wall_clock() {
        let recorder = FlightRecorder::new();
        recorder.begin();
        recorder.set_knobs(64, 4);
        let chan = Arc::new(ChannelStats::new());
        // Credit more wait than the stage's wall: the derivation must
        // clamp, keeping busy ≥ 0 and busy+waits == wall.
        chan.add_send_wait(5_000_000_000);
        chan.add_recv_wait(5_000_000_000);
        recorder.record_stage(
            0,
            "s",
            Duration::from_millis(2),
            10,
            Some(Arc::clone(&chan)),
            Some(chan),
        );
        recorder.finish();
        let log = recorder.flight_log();
        let s = &log.stages[0];
        assert_eq!(s.busy + s.send_wait + s.recv_wait, s.wall);
        assert_eq!(s.send_wait, Duration::from_millis(2));
        assert_eq!(s.recv_wait, Duration::ZERO);
        assert_eq!(s.busy, Duration::ZERO);
    }

    #[test]
    fn stages_sort_by_index_not_arrival() {
        let recorder = FlightRecorder::new();
        recorder.begin();
        recorder.record_stage(2, "last", Duration::ZERO, 0, None, None);
        recorder.record_stage(0, "first", Duration::ZERO, 0, None, None);
        recorder.record_stage(1, "mid", Duration::ZERO, 0, None, None);
        recorder.finish();
        let log = recorder.flight_log();
        let names: Vec<&str> = log.stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(names, ["first", "mid", "last"]);
    }

    #[test]
    fn begin_resets_a_previous_run() {
        let recorder = FlightRecorder::new();
        recorder.begin();
        recorder.record_stage(0, "old", Duration::ZERO, 0, None, None);
        recorder.finish();
        recorder.begin();
        recorder.record_stage(0, "new", Duration::ZERO, 0, None, None);
        recorder.finish();
        let log = recorder.flight_log();
        assert_eq!(log.stages.len(), 1);
        assert_eq!(log.stages[0].stage, "new");
    }

    #[test]
    fn json_is_one_line_and_escapes_labels() {
        let recorder = FlightRecorder::new();
        recorder.begin();
        recorder.record_stage(0, "we\"ird\\label", Duration::from_micros(7), 3, None, None);
        recorder.finish();
        let json = recorder.flight_log().to_json();
        assert!(!json.contains('\n'), "{json}");
        assert!(json.contains("we\\\"ird\\\\label"), "{json}");
        assert!(json.contains("\"wall_us\":7"), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn stall_ratio_is_wait_over_wall() {
        let s = StageReport {
            stage: "x".into(),
            wall: Duration::from_millis(10),
            busy: Duration::from_millis(5),
            send_wait: Duration::from_millis(3),
            recv_wait: Duration::from_millis(2),
            records: 0,
            chunks: 0,
            queue_high_water: 0,
        };
        assert!((s.stall_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn channel_stats_accumulate() {
        let c = ChannelStats::new();
        c.on_send(2);
        c.on_send(4);
        c.on_send(1);
        c.add_send_wait(1_000);
        c.add_send_wait(500);
        c.add_recv_wait(2_000);
        assert_eq!(c.chunks(), 3);
        assert_eq!(c.peak_depth(), 4);
        assert_eq!(c.send_wait(), Duration::from_nanos(1_500));
        assert_eq!(c.recv_wait(), Duration::from_micros(2));
    }
}
