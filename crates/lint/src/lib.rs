#![forbid(unsafe_code)]
//! `tt-lint` — the workspace-native invariant linter.
//!
//! Every correctness claim this project makes rests on invariants the
//! compiler cannot see: bit-identical output at any worker count,
//! `unsafe` confined to the mmap substrate with written justifications, a
//! daemon that must never panic in a handler, and fault decisions that
//! are pure functions of seeds. This crate enforces those invariants
//! mechanically — a hand-rolled, std-only, token-level scanner (the
//! offline build has no `syn`) that runs as `cargo lint` and fails CI on
//! any unwaived finding.
//!
//! # The five lints
//!
//! | lint | rule |
//! |------|------|
//! | `unsafe-audit` | `unsafe` only in the allowlisted mmap substrate, each use immediately preceded by `// SAFETY:`; every other crate root carries `#![forbid(unsafe_code)]` |
//! | `panic-path` | no `unwrap()` / `expect(` / `panic!` / `unreachable!` / `todo!` in non-test library code; `crates/serve` admits no waivers |
//! | `determinism` | no `Instant::now` / `SystemTime::now` / `RandomState` in output-affecting crates (`tt_par::telemetry` excepted) |
//! | `lock-discipline` | no `Mutex`/`RwLock` guard held live across `send`/`recv`/file I/O in the same block |
//! | `error-hygiene` | error strings that mention a file/path must interpolate the path |
//!
//! Findings print rustc-style (`file:line: [lint-name] message`);
//! `--json` emits the machine-readable document CI uploads as an
//! artifact. Intentional exceptions use the inline waiver grammar
//! documented in [`waiver`], and the committed `lint-waivers.txt`
//! baseline keeps the gate zero-findings-or-fail.
//!
//! # Example
//!
//! ```
//! use tt_lint::lint_source;
//!
//! let findings = lint_source(
//!     "crates/sim/src/replay.rs",
//!     "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }",
//! );
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].lint.name(), "panic-path");
//! assert_eq!(findings[0].line, 1);
//! ```

pub mod checks;
pub mod config;
pub mod lexer;
pub mod report;
pub mod waiver;
pub mod walk;

use std::path::Path;

pub use report::{Finding, Lint};

/// Lint a single source text as if it lived at workspace-relative `rel`.
/// Inline waivers are applied; the baseline file is not (that is a
/// workspace-level concern, see [`lint_workspace`]).
#[must_use]
pub fn lint_source(rel: &str, src: &str) -> Vec<Finding> {
    let Some(kind) = config::classify(rel) else {
        return Vec::new();
    };
    let (toks, index) = lexer::lex(src);
    let check = checks::FileCheck::new(rel, kind, &toks, &index);
    let mut findings = check.run();
    let (waivers, waiver_findings) = waiver::scan(rel, &index);
    findings = waiver::apply_inline(findings, &waivers);
    findings.extend(waiver_findings);
    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    findings
}

/// Name of the committed baseline file at the workspace root.
pub const BASELINE_FILE: &str = "lint-waivers.txt";

/// Lint the whole workspace rooted at `root`: walk every lintable file,
/// apply inline waivers, then the `lint-waivers.txt` baseline if present.
/// The returned findings are sorted by (file, line, lint); an empty vec
/// means the gate passes.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for (rel, abs) in walk::workspace_files(root)? {
        let src = std::fs::read_to_string(&abs)?;
        findings.extend(lint_source(&rel, &src));
    }
    let baseline_path = root.join(BASELINE_FILE);
    if let Ok(content) = std::fs::read_to_string(&baseline_path) {
        let (entries, baseline_findings) = waiver::parse_baseline(BASELINE_FILE, &content);
        findings = waiver::apply_baseline(BASELINE_FILE, findings, &entries);
        findings.extend(baseline_findings);
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(findings)
}
