#![forbid(unsafe_code)]
//! The `tt-lint` binary — see the `tt_lint` crate docs for the lints.
//!
//! ```text
//! tt-lint [--root DIR] [--json] [--list]
//! ```
//!
//! Exit status: 0 when the workspace is clean, 1 on any finding, 2 on
//! usage or I/O errors. `cargo lint` (workspace alias) is the intended
//! spelling.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("tt-lint: --root requires a directory");
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(dir));
            }
            "--json" => json = true,
            "--list" => list = true,
            "--help" | "-h" => {
                println!(
                    "tt-lint: workspace invariant linter\n\n\
                     USAGE: tt-lint [--root DIR] [--json] [--list]\n\n\
                     --root DIR  workspace root (default: walk up from cwd)\n\
                     --json      machine-readable findings on stdout\n\
                     --list      print the files that would be scanned, then exit\n\n\
                     Lints: unsafe-audit, panic-path, determinism,\n\
                     lock-discipline, error-hygiene. Waive one finding with\n\
                     an inline comment `lint:allow(<lint>) -- <reason>`;\n\
                     see lint-waivers.txt for the baseline grammar."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("tt-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("tt-lint: cannot determine cwd: {e}");
                    return ExitCode::from(2);
                }
            };
            match tt_lint::walk::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("tt-lint: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    if list {
        match tt_lint::walk::workspace_files(&root) {
            Ok(files) => {
                for (rel, _) in files {
                    println!("{rel}");
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("tt-lint: walking {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }

    let findings = match tt_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("tt-lint: linting {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", tt_lint::report::to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
        eprintln!(
            "tt-lint: {} finding{} in {}",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            root.display()
        );
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
