//! A minimal token-level scanner for Rust source.
//!
//! The lints in this crate need exactly three things from a source file:
//! the sequence of *code* tokens (identifiers, punctuation, literals) with
//! their line numbers, the text of every comment keyed by line, and the
//! set of lines that carry any code at all (so "comment-only line" is
//! decidable). Full parsing is deliberately out of scope — the workspace
//! has no `syn` (offline build), and every check here is expressible over
//! the token stream plus brace depth.
//!
//! The scanner understands the token boundaries that matter for not
//! mis-lexing real code: line and (nested) block comments, cooked and raw
//! string literals with all of Rust's prefixes (`b` `c` `r` `br` `cr`),
//! byte/char literals vs. lifetimes, raw identifiers (`r#match`), and
//! numeric literals including float exponents (so `1.0e-5` does not leak
//! a spurious `.` token while `0..n` still does).

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line the token starts on.
    pub line: u32,
    pub kind: TokenKind,
}

/// The token classes the lints distinguish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `unwrap`, `Instant`, ...).
    Ident(String),
    /// A single punctuation character; multi-character operators arrive
    /// as consecutive tokens (`::` is two `:`).
    Punct(char),
    /// String literal (cooked or raw, any prefix) with its decoded-enough
    /// content: escapes are kept verbatim, which is sufficient for the
    /// substring checks the error-hygiene lint performs.
    Str(String),
    /// Character or byte literal.
    CharLit,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// A comment's text, keyed by every line it touches.
#[derive(Debug, Default)]
pub struct LineIndex {
    /// line -> concatenated comment text appearing on that line.
    comments: std::collections::HashMap<u32, String>,
    /// Lines that contain at least one code token.
    code_lines: std::collections::HashSet<u32>,
}

impl LineIndex {
    /// The comment text on `line`, if any.
    #[must_use]
    pub fn comment(&self, line: u32) -> Option<&str> {
        self.comments.get(&line).map(String::as_str)
    }

    /// `true` when `line` holds a comment and no code tokens.
    #[must_use]
    pub fn is_comment_only(&self, line: u32) -> bool {
        self.comments.contains_key(&line) && !self.code_lines.contains(&line)
    }

    /// `true` when `line` holds at least one code token.
    #[must_use]
    pub fn has_code(&self, line: u32) -> bool {
        self.code_lines.contains(&line)
    }

    /// Every (line, text) comment pair, unordered.
    pub fn comments(&self) -> impl Iterator<Item = (u32, &str)> {
        self.comments.iter().map(|(l, t)| (*l, t.as_str()))
    }

    fn push_comment(&mut self, line: u32, text: &str) {
        let slot = self.comments.entry(line).or_default();
        if !slot.is_empty() {
            slot.push(' ');
        }
        slot.push_str(text);
    }
}

/// Scan `src` into tokens plus a line index of comments and code lines.
#[must_use]
pub fn lex(src: &str) -> (Vec<Token>, LineIndex) {
    let bytes: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut index = LineIndex::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    macro_rules! push {
        ($kind:expr, $l:expr) => {{
            index.code_lines.insert($l);
            toks.push(Token {
                line: $l,
                kind: $kind,
            });
        }};
    }

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                let start = i;
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                index.push_comment(line, text.trim());
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                // Nested block comment; record its text per line.
                let mut depth = 1usize;
                i += 2;
                let mut cur = String::from("/*");
                while i < n && depth > 0 {
                    if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                        depth += 1;
                        cur.push_str("/*");
                        i += 2;
                    } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                        depth -= 1;
                        cur.push_str("*/");
                        i += 2;
                    } else if bytes[i] == '\n' {
                        index.push_comment(line, cur.trim());
                        cur.clear();
                        line += 1;
                        i += 1;
                    } else {
                        cur.push(bytes[i]);
                        i += 1;
                    }
                }
                if !cur.trim().is_empty() {
                    index.push_comment(line, cur.trim());
                }
            }
            '"' => {
                let start_line = line;
                let (text, ni, nl) = scan_cooked_string(&bytes, i, line);
                i = ni;
                line = nl;
                push!(TokenKind::Str(text), start_line);
            }
            '\'' => {
                // Char literal or lifetime. '\x' and 'x' are literals; 'ident
                // (no closing quote after one identifier char) is a lifetime.
                let start_line = line;
                if i + 1 < n && bytes[i + 1] == '\\' {
                    let (ni, nl) = scan_char_tail(&bytes, i + 2, line);
                    i = ni;
                    line = nl;
                    push!(TokenKind::CharLit, start_line);
                } else if i + 2 < n && bytes[i + 2] == '\'' {
                    i += 3;
                    push!(TokenKind::CharLit, start_line);
                } else {
                    i += 1;
                    while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                        i += 1;
                    }
                    push!(TokenKind::Lifetime, start_line);
                }
            }
            c if c.is_ascii_digit() => {
                let start_line = line;
                i = scan_number(&bytes, i);
                push!(TokenKind::Num, start_line);
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let ident: String = bytes[start..i].iter().collect();
                // Literal prefixes and raw identifiers.
                if i < n {
                    let next = bytes[i];
                    let is_str_prefix =
                        matches!(ident.as_str(), "r" | "b" | "br" | "rb" | "c" | "cr");
                    if is_str_prefix && next == '"' {
                        let start_line = line;
                        let (text, ni, nl) = scan_cooked_string(&bytes, i, line);
                        i = ni;
                        line = nl;
                        push!(TokenKind::Str(text), start_line);
                        continue;
                    }
                    if is_str_prefix && next == '#' {
                        // Raw string r#".."# — or a raw identifier r#name.
                        let mut hashes = 0usize;
                        let mut j = i;
                        while j < n && bytes[j] == '#' {
                            hashes += 1;
                            j += 1;
                        }
                        if j < n && bytes[j] == '"' {
                            let start_line = line;
                            let (text, ni, nl) = scan_raw_string(&bytes, j + 1, hashes, line);
                            i = ni;
                            line = nl;
                            push!(TokenKind::Str(text), start_line);
                            continue;
                        }
                        if ident == "r" && j < n && (bytes[j].is_alphabetic() || bytes[j] == '_') {
                            // Raw identifier: emit the bare name.
                            let start = j;
                            let mut k = j;
                            while k < n && (bytes[k].is_alphanumeric() || bytes[k] == '_') {
                                k += 1;
                            }
                            let raw: String = bytes[start..k].iter().collect();
                            i = k;
                            push!(TokenKind::Ident(raw), line);
                            continue;
                        }
                    }
                    if (ident == "b" || ident == "c") && next == '\'' {
                        let start_line = line;
                        if i + 1 < n && bytes[i + 1] == '\\' {
                            let (ni, nl) = scan_char_tail(&bytes, i + 2, line);
                            i = ni;
                            line = nl;
                        } else {
                            i += 3.min(n - i);
                        }
                        push!(TokenKind::CharLit, start_line);
                        continue;
                    }
                }
                push!(TokenKind::Ident(ident), line);
            }
            c => {
                push!(TokenKind::Punct(c), line);
                i += 1;
            }
        }
    }
    (toks, index)
}

/// Scan a cooked string starting at the opening `"`; returns (content,
/// next index, next line).
fn scan_cooked_string(bytes: &[char], start: usize, mut line: u32) -> (String, usize, u32) {
    let mut i = start + 1;
    let n = bytes.len();
    let mut text = String::new();
    while i < n {
        match bytes[i] {
            '\\' if i + 1 < n => {
                text.push(bytes[i]);
                text.push(bytes[i + 1]);
                if bytes[i + 1] == '\n' {
                    line += 1;
                }
                i += 2;
            }
            '"' => {
                i += 1;
                return (text, i, line);
            }
            '\n' => {
                text.push('\n');
                line += 1;
                i += 1;
            }
            c => {
                text.push(c);
                i += 1;
            }
        }
    }
    (text, i, line)
}

/// Scan a raw string whose content starts at `start` (just past the
/// opening quote), terminated by `"` followed by `hashes` `#`s.
fn scan_raw_string(
    bytes: &[char],
    start: usize,
    hashes: usize,
    mut line: u32,
) -> (String, usize, u32) {
    let n = bytes.len();
    let mut i = start;
    let mut text = String::new();
    while i < n {
        if bytes[i] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if i + 1 + k >= n || bytes[i + 1 + k] != '#' {
                    ok = false;
                    break;
                }
            }
            if ok {
                return (text, i + 1 + hashes, line);
            }
        }
        if bytes[i] == '\n' {
            line += 1;
        }
        text.push(bytes[i]);
        i += 1;
    }
    (text, i, line)
}

/// Scan the tail of an escaped char literal (`'\...'`), starting just
/// past the backslash; consumes through the closing quote.
fn scan_char_tail(bytes: &[char], start: usize, line: u32) -> (usize, u32) {
    let n = bytes.len();
    let mut i = start;
    while i < n && bytes[i] != '\'' && bytes[i] != '\n' {
        i += 1;
    }
    if i < n && bytes[i] == '\'' {
        i += 1;
    }
    (i, line)
}

/// Scan a numeric literal starting at a digit; handles `0x..`, digit
/// separators, float fractions (only when a digit follows the dot, so
/// range expressions like `0..n` keep their `.` tokens) and exponents.
fn scan_number(bytes: &[char], start: usize) -> usize {
    let n = bytes.len();
    let mut i = start;
    while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
        i += 1;
    }
    // Fraction: a dot followed by a digit.
    if i + 1 < n && bytes[i] == '.' && bytes[i + 1].is_ascii_digit() {
        i += 1;
        while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
            if (bytes[i] == 'e' || bytes[i] == 'E')
                && i + 1 < n
                && (bytes[i + 1] == '+' || bytes[i + 1] == '-')
            {
                i += 1; // consume the exponent sign with the marker
            }
            i += 1;
        }
    } else if i < n
        && (bytes[i] == '+' || bytes[i] == '-')
        && i > start
        && (bytes[i - 1] == 'e' || bytes[i - 1] == 'E')
    {
        // `1e-5` without a fraction part.
        i += 1;
        while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_keywords() {
        let src = r##"
// unsafe in a comment
let s = "unsafe { }";
let r = r#"panic!()"#;
"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert_eq!(ids, vec!["let", "s", "let", "r"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let (toks, _) = lex(src);
        let lifetimes = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = toks.iter().filter(|t| t.kind == TokenKind::CharLit).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn ranges_keep_dot_tokens_floats_do_not() {
        let (toks, _) = lex("for i in 0..n { x += 1.0e-5; }");
        let dots = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Punct('.'))
            .count();
        assert_eq!(dots, 2, "range dots survive, float dot is consumed");
    }

    #[test]
    fn comment_index_tracks_lines() {
        let src = "let a = 1; // trailing\n// SAFETY: fine\nunsafe {}\n";
        let (_, idx) = lex(src);
        assert!(idx.comment(1).unwrap().contains("trailing"));
        assert!(idx.is_comment_only(2));
        assert!(!idx.is_comment_only(1));
        assert!(idx.comment(2).unwrap().contains("SAFETY:"));
        assert!(idx.has_code(3));
    }

    #[test]
    fn escaped_quotes_and_raw_idents() {
        let (toks, _) = lex(r#"let x = "a\"unsafe\"b"; let r#type = 1;"#);
        let strs: Vec<_> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Str(_)))
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(idents(r#"let r#type = 1;"#).contains(&"type".to_string()));
    }

    #[test]
    fn block_comments_nest() {
        let src = "/* outer /* inner */ still comment */ let x = 1;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x"]);
    }
}
