//! The five invariant lints, implemented over the token stream.

use crate::config::{
    self, FileKind, DETERMINISM_ALLOWLIST, DETERMINISM_CRATE_DIRS, FORBID_EXEMPT_ROOTS,
    PANIC_CRATE_DIRS, UNSAFE_ALLOWLIST,
};
use crate::lexer::{LineIndex, Token, TokenKind};
use crate::report::{Finding, Lint};

/// Per-file analysis state shared by every check.
pub struct FileCheck<'a> {
    rel: &'a str,
    kind: FileKind,
    toks: &'a [Token],
    index: &'a LineIndex,
    /// Brace depth *before* each token takes effect.
    depth: Vec<u32>,
    /// Token-index ranges covered by `#[cfg(test)]` / `#[test]` items.
    test_extents: Vec<(usize, usize)>,
}

impl<'a> FileCheck<'a> {
    #[must_use]
    pub fn new(rel: &'a str, kind: FileKind, toks: &'a [Token], index: &'a LineIndex) -> Self {
        let mut depth = Vec::with_capacity(toks.len());
        let mut d = 0u32;
        for t in toks {
            depth.push(d);
            match t.kind {
                TokenKind::Punct('{') => d += 1,
                TokenKind::Punct('}') => d = d.saturating_sub(1),
                _ => {}
            }
        }
        let test_extents = find_test_extents(toks);
        FileCheck {
            rel,
            kind,
            toks,
            index,
            depth,
            test_extents,
        }
    }

    fn ident(&self, i: usize) -> Option<&str> {
        match self.toks.get(i)?.kind {
            TokenKind::Ident(ref s) => Some(s),
            _ => None,
        }
    }

    fn punct(&self, i: usize, c: char) -> bool {
        matches!(self.toks.get(i), Some(t) if t.kind == TokenKind::Punct(c))
    }

    fn in_test(&self, i: usize) -> bool {
        self.test_extents.iter().any(|&(a, b)| i >= a && i <= b)
    }

    /// `true` when the contiguous comment/attribute block directly above
    /// `line` (or a trailing comment on `line` itself) contains `needle`.
    fn comment_above_contains(&self, line: u32, needle: &str) -> bool {
        if let Some(c) = self.index.comment(line) {
            if c.contains(needle) {
                return true;
            }
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            if self.index.is_comment_only(l) {
                if self.index.comment(l).is_some_and(|c| c.contains(needle)) {
                    return true;
                }
                l -= 1;
            } else if self.is_attr_line(l) {
                l -= 1;
            } else {
                break;
            }
        }
        false
    }

    /// A line whose first token is `#` (an attribute) — transparent when
    /// looking upward for a justifying comment.
    fn is_attr_line(&self, line: u32) -> bool {
        if !self.index.has_code(line) {
            return false;
        }
        self.toks
            .iter()
            .find(|t| t.line == line)
            .is_some_and(|t| t.kind == TokenKind::Punct('#'))
    }

    /// Run every lint applicable to this file.
    #[must_use]
    pub fn run(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        self.check_unsafe(&mut out);
        if self.kind == FileKind::Library {
            self.check_panic(&mut out);
            self.check_determinism(&mut out);
            self.check_locks(&mut out);
            self.check_error_hygiene(&mut out);
        }
        out
    }

    fn finding(&self, line: u32, lint: Lint, message: String) -> Finding {
        Finding {
            file: self.rel.to_string(),
            line,
            lint,
            message,
        }
    }

    // ---- lint 1: unsafe-audit ------------------------------------------

    fn check_unsafe(&self, out: &mut Vec<Finding>) {
        let allowlisted = UNSAFE_ALLOWLIST.contains(&self.rel);
        for (i, t) in self.toks.iter().enumerate() {
            if self.ident(i) != Some("unsafe") {
                continue;
            }
            if !allowlisted {
                out.push(self.finding(
                    t.line,
                    Lint::UnsafeAudit,
                    format!(
                        "`unsafe` outside the sanctioned mmap substrate \
                         (allowed only in {})",
                        UNSAFE_ALLOWLIST.join(", ")
                    ),
                ));
                continue;
            }
            if !self.comment_above_contains(t.line, "SAFETY:") {
                out.push(self.finding(
                    t.line,
                    Lint::UnsafeAudit,
                    "`unsafe` without an immediately preceding `// SAFETY:` comment".to_string(),
                ));
            }
        }
        if config::is_crate_root(self.rel) && !FORBID_EXEMPT_ROOTS.contains(&self.rel) {
            let has_forbid = self.toks.windows(8).any(|w| {
                matches!(&w[0].kind, TokenKind::Punct('#'))
                    && matches!(&w[1].kind, TokenKind::Punct('!'))
                    && matches!(&w[2].kind, TokenKind::Punct('['))
                    && matches!(&w[3].kind, TokenKind::Ident(s) if s == "forbid")
                    && matches!(&w[4].kind, TokenKind::Punct('('))
                    && matches!(&w[5].kind, TokenKind::Ident(s) if s == "unsafe_code")
                    && matches!(&w[6].kind, TokenKind::Punct(')'))
                    && matches!(&w[7].kind, TokenKind::Punct(']'))
            });
            if !has_forbid {
                out.push(
                    self.finding(
                        1,
                        Lint::UnsafeAudit,
                        "crate root is missing `#![forbid(unsafe_code)]` \
                     (only tt-trace may hold unsafe code)"
                            .to_string(),
                    ),
                );
            }
        }
    }

    // ---- lint 2: panic-path --------------------------------------------

    fn check_panic(&self, out: &mut Vec<Finding>) {
        if !config::under_any(self.rel, PANIC_CRATE_DIRS) {
            return;
        }
        for (i, t) in self.toks.iter().enumerate() {
            if self.in_test(i) {
                continue;
            }
            let Some(id) = self.ident(i) else { continue };
            let method_call = i > 0 && self.punct(i - 1, '.') && self.punct(i + 1, '(');
            let bang_macro = self.punct(i + 1, '!');
            let hit = match id {
                "unwrap" | "expect" if method_call => format!("`.{id}()`"),
                "panic" | "unreachable" | "todo" | "unimplemented" if bang_macro => {
                    format!("`{id}!`")
                }
                _ => continue,
            };
            out.push(self.finding(
                t.line,
                Lint::PanicPath,
                format!(
                    "{hit} in non-test library code — return a contextual \
                     error instead (or waive with `// lint:allow(panic) -- <reason>`)"
                ),
            ));
        }
    }

    // ---- lint 3: determinism -------------------------------------------

    fn check_determinism(&self, out: &mut Vec<Finding>) {
        if !config::under_any(self.rel, DETERMINISM_CRATE_DIRS)
            || DETERMINISM_ALLOWLIST.contains(&self.rel)
        {
            return;
        }
        for (i, t) in self.toks.iter().enumerate() {
            if self.in_test(i) {
                continue;
            }
            let Some(id) = self.ident(i) else { continue };
            let qualified_now = (id == "Instant" || id == "SystemTime")
                && self.punct(i + 1, ':')
                && self.punct(i + 2, ':')
                && self.ident(i + 3) == Some("now");
            if qualified_now {
                out.push(self.finding(
                    t.line,
                    Lint::Determinism,
                    format!(
                        "`{id}::now` reads the ambient clock in an \
                         output-affecting crate — outputs must be a pure \
                         function of inputs and seeds"
                    ),
                ));
            } else if id == "RandomState" {
                out.push(
                    self.finding(
                        t.line,
                        Lint::Determinism,
                        "`RandomState` seeds hash iteration order randomly in an \
                     output-affecting crate — use a deterministic order \
                     (sorted keys or BTreeMap)"
                            .to_string(),
                    ),
                );
            }
        }
    }

    // ---- lint 4: lock-discipline ---------------------------------------

    fn check_locks(&self, out: &mut Vec<Finding>) {
        const RISKY_METHODS: &[&str] = &[
            "send",
            "try_send",
            "recv",
            "try_recv",
            "recv_timeout",
            "write_all",
            "flush",
            "sync_all",
            "sync_data",
            "read_exact",
            "read_to_end",
            "read_to_string",
        ];
        for i in 0..self.toks.len() {
            // A guard acquisition: `.lock()`, or the zero-argument RwLock
            // accessors `.read()` / `.write()` (the I/O methods of the same
            // names always take arguments).
            let is_acquire = i > 0
                && self.punct(i - 1, '.')
                && matches!(self.ident(i), Some("lock" | "read" | "write"))
                && self.punct(i + 1, '(')
                && self.punct(i + 2, ')');
            if !is_acquire || self.in_test(i) {
                continue;
            }
            // Only a `let`-bound guard outlives its statement.
            let stmt_start = (0..i)
                .rev()
                .find(|&j| {
                    matches!(
                        self.toks[j].kind,
                        TokenKind::Punct(';') | TokenKind::Punct('{') | TokenKind::Punct('}')
                    )
                })
                .map_or(0, |j| j + 1);
            let let_idx = (stmt_start..i).find(|&j| self.ident(j) == Some("let"));
            let Some(let_idx) = let_idx else { continue };
            // Guard name: the last plain identifier of the binding pattern
            // (covers `let g`, `let mut g`, `let Ok(g)`).
            let eq_idx = (let_idx..i).find(|&j| self.punct(j, '=')).unwrap_or(i);
            let guard = (let_idx + 1..eq_idx)
                .rev()
                .find_map(|j| self.ident(j).filter(|s| !matches!(*s, "mut" | "ref")))
                .unwrap_or("_guard");
            let guard_line = self.toks[i].line;
            let block_depth = self.depth[let_idx];
            // The guard is live from the acquisition to the end of the
            // enclosing block, or an explicit `drop(guard)`.
            let mut k = i + 1;
            while k < self.toks.len() {
                if matches!(self.toks[k].kind, TokenKind::Punct('}'))
                    && self.depth[k] <= block_depth
                {
                    break;
                }
                if self.ident(k) == Some("drop")
                    && self.punct(k + 1, '(')
                    && self.ident(k + 2) == Some(guard)
                {
                    break;
                }
                let risky_method = self.punct(k.wrapping_sub(1), '.')
                    && self.ident(k).is_some_and(|id| RISKY_METHODS.contains(&id))
                    && self.punct(k + 1, '(');
                let risky_path = matches!(self.ident(k), Some("File" | "fs"))
                    && self.punct(k + 1, ':')
                    && self.punct(k + 2, ':');
                if risky_method || risky_path {
                    let what = self.ident(k).unwrap_or("call");
                    out.push(self.finding(
                        self.toks[k].line,
                        Lint::LockDiscipline,
                        format!(
                            "lock guard `{guard}` (acquired on line {guard_line}) is \
                             still live across `{what}` — a blocking channel or I/O \
                             call under a lock is the workspace's deadlock shape; \
                             drop the guard first"
                        ),
                    ));
                    break; // one finding per guard
                }
                k += 1;
            }
        }
    }

    // ---- lint 5: error-hygiene -----------------------------------------

    fn check_error_hygiene(&self, out: &mut Vec<Finding>) {
        for (i, t) in self.toks.iter().enumerate() {
            if self.in_test(i) {
                continue;
            }
            let TokenKind::Str(ref s) = t.kind else {
                continue;
            };
            if s.contains('{') {
                continue; // interpolates something
            }
            // Case-sensitive on purpose: uppercase `FILE`/`PATH` in usage
            // strings are metavariables, not references to a real path.
            if !word_in(s, "file") && !word_in(s, "path") && !word_in(s, "directory") {
                continue;
            }
            // Only in error-construction position: Err(...), format!(...)
            // feeding an error, or SomethingError::Variant(...).
            let ctx = i.saturating_sub(8)..i;
            let in_error_position = ctx.clone().any(|j| {
                self.ident(j).is_some_and(|id| {
                    id == "Err"
                        || id.ends_with("Error")
                        || (id == "format" && self.punct(j + 1, '!'))
                })
            });
            if in_error_position {
                out.push(self.finding(
                    t.line,
                    Lint::ErrorHygiene,
                    format!(
                        "error message {s:?} mentions a file/path but interpolates \
                         nothing — include the offending path in the message"
                    ),
                ));
            }
        }
    }
}

/// `needle` appears in `hay` bounded by non-alphanumeric characters (so
/// "profile" does not count as "file").
fn word_in(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric());
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric());
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Token-index extents of `#[cfg(test)]`-gated items and `#[test]` fns.
fn find_test_extents(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut extents = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let is_hash = matches!(toks[i].kind, TokenKind::Punct('#'));
        if !is_hash || !matches!(toks.get(i + 1), Some(t) if t.kind == TokenKind::Punct('[')) {
            i += 1;
            continue;
        }
        // Find the matching `]`, tracking nesting.
        let mut j = i + 2;
        let mut brackets = 1i32;
        let mut attr_idents: Vec<&str> = Vec::new();
        let mut gating_test = false;
        while j < toks.len() && brackets > 0 {
            match &toks[j].kind {
                TokenKind::Punct('[') => brackets += 1,
                TokenKind::Punct(']') => brackets -= 1,
                TokenKind::Ident(s) => {
                    // `test` gates the item unless negated: `cfg(not(test))`
                    // is production-only code and must stay fully linted.
                    if s == "test" {
                        let negated = j >= 2
                            && matches!(&toks[j - 1].kind, TokenKind::Punct('('))
                            && matches!(&toks[j - 2].kind, TokenKind::Ident(p) if p == "not");
                        gating_test |= !negated;
                    }
                    attr_idents.push(s);
                }
                _ => {}
            }
            j += 1;
        }
        let is_test_attr = attr_idents.first() == Some(&"test")
            || attr_idents.first() == Some(&"bench")
            || (attr_idents.contains(&"cfg") && gating_test);
        if !is_test_attr {
            i = j;
            continue;
        }
        // Extent: through the gated item — to the matching `}` of its
        // first block, or to a `;` if the item has no body.
        let mut k = j;
        let mut open = None;
        while k < toks.len() {
            match toks[k].kind {
                TokenKind::Punct('{') => {
                    open = Some(k);
                    break;
                }
                TokenKind::Punct(';') => break,
                _ => {}
            }
            k += 1;
        }
        let end = if let Some(open_idx) = open {
            let mut depth = 0i32;
            let mut e = open_idx;
            while e < toks.len() {
                match toks[e].kind {
                    TokenKind::Punct('{') => depth += 1,
                    TokenKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                e += 1;
            }
            e
        } else {
            k
        };
        extents.push((i, end));
        i = j; // attributes can stack; keep scanning inside the item too
    }
    extents
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rel: &str, kind: FileKind, src: &str) -> Vec<Finding> {
        let (toks, index) = lex(src);
        FileCheck::new(rel, kind, &toks, &index).run()
    }

    #[test]
    fn unsafe_outside_allowlist_is_flagged() {
        let f = run(
            "crates/sim/src/replay.rs",
            FileKind::Library,
            "pub fn f() { unsafe { std::hint::unreachable_unchecked() } }",
        );
        assert!(f.iter().any(|x| x.lint == Lint::UnsafeAudit));
    }

    #[test]
    fn safety_comment_satisfies_the_audit() {
        let src = "// SAFETY: checked above.\nlet x = unsafe { *p };\n";
        let f = run("crates/trace/src/mmap.rs", FileKind::Library, src);
        assert!(f.iter().all(|x| x.lint != Lint::UnsafeAudit));
        let bad = "let x = unsafe { *p };\n";
        let f = run("crates/trace/src/mmap.rs", FileKind::Library, bad);
        assert!(f.iter().any(|x| x.lint == Lint::UnsafeAudit));
    }

    #[test]
    fn panic_paths_flagged_outside_tests_only() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests { fn g() { panic!(\"fine\"); } }\n";
        let f = run("crates/sim/src/replay.rs", FileKind::Library, src);
        assert_eq!(
            f.iter().filter(|x| x.lint == Lint::PanicPath).count(),
            1,
            "{f:?}"
        );
    }

    #[test]
    fn determinism_flags_clocks_in_core_not_serve() {
        let src = "pub fn f() { let t = Instant::now(); }";
        let f = run("crates/core/src/lib.rs", FileKind::Library, src);
        assert!(f.iter().any(|x| x.lint == Lint::Determinism));
        let f = run("crates/serve/src/http.rs", FileKind::Library, src);
        assert!(f.iter().all(|x| x.lint != Lint::Determinism));
    }

    #[test]
    fn lock_guard_across_send_is_flagged_and_drop_clears_it() {
        let bad = "fn f() { let g = m.lock().unwrap_or_default(); tx.send(1).ok(); }";
        let f = run("crates/par/src/bounded.rs", FileKind::Library, bad);
        assert!(f.iter().any(|x| x.lint == Lint::LockDiscipline), "{f:?}");
        let good = "fn f() { let g = m.lock().unwrap_or_default(); drop(g); tx.send(1).ok(); }";
        let f = run("crates/par/src/bounded.rs", FileKind::Library, good);
        assert!(f.iter().all(|x| x.lint != Lint::LockDiscipline));
    }

    #[test]
    fn error_hygiene_wants_the_path_interpolated() {
        let bad = r#"fn f() -> Result<(), String> { Err(format!("cannot open file")) }"#;
        let f = run("crates/cli/src/io.rs", FileKind::Library, bad);
        assert!(f.iter().any(|x| x.lint == Lint::ErrorHygiene));
        let good =
            r#"fn f(p: &str) -> Result<(), String> { Err(format!("cannot open file {p}")) }"#;
        let f = run("crates/cli/src/io.rs", FileKind::Library, good);
        assert!(f.iter().all(|x| x.lint != Lint::ErrorHygiene));
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let f = run("crates/sim/src/replay.rs", FileKind::Library, src);
        assert!(
            f.iter().any(|x| x.lint == Lint::PanicPath),
            "cfg(not(test)) code is production code: {f:?}"
        );
    }

    #[test]
    fn uppercase_metavariables_are_not_paths() {
        let src = r#"fn f() -> Result<(), String> { Err("usage: convert IN FILE".to_string()) }"#;
        let f = run("crates/cli/src/io.rs", FileKind::Library, src);
        assert!(f.iter().all(|x| x.lint != Lint::ErrorHygiene), "{f:?}");
    }

    #[test]
    fn word_boundaries_protect_profile() {
        assert!(word_in("bad file here", "file"));
        assert!(!word_in("workload profile", "file"));
        assert!(word_in("path: missing", "path"));
        assert!(!word_in("datapath", "path"));
    }
}
