//! Workspace file discovery.

use std::path::{Path, PathBuf};

use crate::config;

/// The directories tt-lint scans, relative to the workspace root.
const SCAN_ROOTS: &[&str] = &["src", "tests", "examples", "benches", "crates", "compat"];

/// Collect every lintable `.rs` file under `root`, as (relative path with
/// `/` separators, absolute path) pairs, sorted for deterministic output.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    for dir in SCAN_ROOTS {
        let abs = root.join(dir);
        if abs.is_dir() {
            collect(root, &abs, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            if config::classify(&rel).is_some() {
                out.push((rel, path));
            }
        }
    }
    Ok(())
}

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]` — how the `cargo lint` alias finds the root regardless
/// of the invocation directory.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join(".cargo/config.toml").exists());
    }

    #[test]
    fn walks_this_workspace_deterministically() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let files = workspace_files(&root).expect("walk");
        assert!(files.iter().any(|(r, _)| r == "crates/lint/src/walk.rs"));
        assert!(files.iter().any(|(r, _)| r == "src/lib.rs"));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
