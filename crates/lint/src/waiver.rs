//! Inline waiver comments and the committed baseline file.
//!
//! # Inline grammar
//!
//! ```text
//! // lint:allow(<lint>) -- <reason>
//! ```
//!
//! `<lint>` is a lint name (`panic`, `unsafe`, `determinism`, `lock`,
//! `error-hygiene`, or the full kebab-case names) and `<reason>` is a
//! non-empty justification. The waiver applies to findings on its own
//! line (trailing comment) or, when it stands alone on a comment line, to
//! the next code line below. A malformed waiver — unknown lint, missing
//! ` -- `, empty reason — is itself a finding: a waiver that silently
//! fails to parse would otherwise *look* like suppression while
//! suppressing nothing.
//!
//! # Baseline file
//!
//! `lint-waivers.txt` at the workspace root holds one entry per line:
//!
//! ```text
//! <path> [<lint-name>] <message substring>
//! ```
//!
//! Findings matching an entry are suppressed; entries that match nothing
//! are reported (a stale baseline is debt, not hygiene). Blank lines and
//! `#` comments are ignored. The committed file is empty: the gate is
//! zero-findings-or-fail.

use crate::config;
use crate::lexer::LineIndex;
use crate::report::{Finding, Lint};

/// A parsed (or rejected) inline waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InlineWaiver {
    /// Line the comment sits on.
    pub line: u32,
    /// Line whose findings it suppresses.
    pub target: u32,
    pub lint: Lint,
    pub reason: String,
}

/// Scan a file's comments for `lint:allow` waivers. Returns the
/// well-formed waivers plus findings for malformed ones (and for panic
/// waivers in paths where the policy admits none).
#[must_use]
pub fn scan(rel: &str, index: &LineIndex) -> (Vec<InlineWaiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    let mut lines: Vec<(u32, &str)> = index.comments().collect();
    lines.sort_unstable_by_key(|&(l, _)| l);
    let max_line = lines.last().map_or(0, |&(l, _)| l);
    for (line, text) in lines {
        let mut rest = text;
        while let Some(pos) = rest.find("lint:allow") {
            rest = &rest[pos + "lint:allow".len()..];
            match parse_one(rest) {
                Ok(None) => {} // a mention in prose/docs, not a waiver attempt
                Ok(Some((lint, reason))) => {
                    if lint == Lint::PanicPath && config::under_any(rel, config::NO_PANIC_WAIVERS) {
                        findings.push(Finding {
                            file: rel.to_string(),
                            line,
                            lint: Lint::Waiver,
                            message: "panic waivers are not permitted in tt-serve request \
                                      handling — convert the panicking call to an error \
                                      response"
                                .to_string(),
                        });
                        continue;
                    }
                    let target = if index.has_code(line) {
                        line
                    } else {
                        // A standalone waiver comment covers the next code
                        // line below (skipping the rest of its comment block).
                        let mut l = line + 1;
                        while l <= max_line.max(line) + 1 && index.is_comment_only(l) {
                            l += 1;
                        }
                        l
                    };
                    waivers.push(InlineWaiver {
                        line,
                        target,
                        lint,
                        reason,
                    });
                }
                Err(why) => findings.push(Finding {
                    file: rel.to_string(),
                    line,
                    lint: Lint::Waiver,
                    message: format!(
                        "malformed waiver: {why} — expected \
                         `lint:allow(<lint>) -- <reason>`"
                    ),
                }),
            }
        }
    }
    (waivers, findings)
}

/// Parse the tail after `lint:allow`. Returns `Ok(None)` when the text is
/// not a waiver *attempt* at all (no parenthesised identifier-shaped key —
/// i.e. prose or documentation mentioning the grammar), `Err` when it is
/// an attempt that fails to parse.
fn parse_one(rest: &str) -> Result<Option<(Lint, String)>, String> {
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Ok(None);
    };
    let Some(close) = rest.find(')') else {
        return Ok(None);
    };
    let key = rest[..close].trim();
    if key.is_empty()
        || !key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Ok(None);
    }
    let Some(lint) = Lint::from_waiver_key(key) else {
        return Err(format!("unknown lint `{key}`"));
    };
    let tail = rest[close + 1..].trim_start();
    let Some(reason) = tail.strip_prefix("--") else {
        return Err("missing ` -- <reason>` after the lint name".to_string());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("empty reason".to_string());
    }
    Ok(Some((lint, reason.to_string())))
}

/// Drop findings covered by an inline waiver.
#[must_use]
pub fn apply_inline(findings: Vec<Finding>, waivers: &[InlineWaiver]) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            f.lint == Lint::Waiver
                || !waivers
                    .iter()
                    .any(|w| w.lint == f.lint && w.target == f.line)
        })
        .collect()
}

/// One entry of the committed baseline file.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    /// 1-based line in the baseline file (for unused-entry reporting).
    pub line: u32,
    pub file: String,
    pub lint: Lint,
    pub needle: String,
}

/// Parse `lint-waivers.txt` content. Malformed entries become findings
/// against the baseline file itself.
#[must_use]
pub fn parse_baseline(name: &str, content: &str) -> (Vec<BaselineEntry>, Vec<Finding>) {
    let mut entries = Vec::new();
    let mut findings = Vec::new();
    for (i, raw) in content.lines().enumerate() {
        let line = u32::try_from(i).unwrap_or(u32::MAX).saturating_add(1);
        let text = raw.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let parsed = (|| {
            let (file, rest) = text.split_once(' ')?;
            let rest = rest.trim_start();
            let rest = rest.strip_prefix('[')?;
            let (key, needle) = rest.split_once(']')?;
            let lint = Lint::from_waiver_key(key.trim())?;
            Some(BaselineEntry {
                line,
                file: file.to_string(),
                lint,
                needle: needle.trim().to_string(),
            })
        })();
        match parsed {
            Some(e) => entries.push(e),
            None => findings.push(Finding {
                file: name.to_string(),
                line,
                lint: Lint::Waiver,
                message: format!(
                    "malformed baseline entry {text:?} — expected \
                     `<path> [<lint>] <message substring>`"
                ),
            }),
        }
    }
    (entries, findings)
}

/// Suppress findings matched by the baseline; report unused entries.
#[must_use]
pub fn apply_baseline(
    name: &str,
    findings: Vec<Finding>,
    entries: &[BaselineEntry],
) -> Vec<Finding> {
    let mut used = vec![false; entries.len()];
    let mut out: Vec<Finding> = findings
        .into_iter()
        .filter(|f| {
            let hit = entries.iter().enumerate().find(|(_, e)| {
                e.file == f.file && e.lint == f.lint && f.message.contains(&e.needle)
            });
            match hit {
                Some((i, _)) => {
                    used[i] = true;
                    false
                }
                None => true,
            }
        })
        .collect();
    for (i, e) in entries.iter().enumerate() {
        if !used[i] {
            out.push(Finding {
                file: name.to_string(),
                line: e.line,
                lint: Lint::Waiver,
                message: format!(
                    "baseline entry for {} [{}] matched no finding — delete the stale entry",
                    e.file,
                    e.lint.name()
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn well_formed_waiver_parses_and_targets_next_code_line() {
        let src = "// lint:allow(panic) -- startup only, no trace loaded yet\n\
                   let x = opt.unwrap();\n";
        let (_, idx) = lex(src);
        let (ws, fs) = scan("crates/cli/src/io.rs", &idx);
        assert!(fs.is_empty(), "{fs:?}");
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].target, 2);
        assert_eq!(ws[0].lint, Lint::PanicPath);
        assert!(ws[0].reason.contains("startup"));
    }

    #[test]
    fn trailing_waiver_targets_its_own_line() {
        let src = "let x = opt.unwrap(); // lint:allow(panic) -- checked above\n";
        let (_, idx) = lex(src);
        let (ws, _) = scan("crates/cli/src/io.rs", &idx);
        assert_eq!(ws[0].target, 1);
    }

    #[test]
    fn malformed_waivers_are_findings() {
        for bad in [
            "// lint:allow(panic)",           // no reason
            "// lint:allow(panic) -- ",       // empty reason
            "// lint:allow(bogus) -- reason", // unknown lint
        ] {
            let (_, idx) = lex(&format!("{bad}\nlet x = 1;\n"));
            let (ws, fs) = scan("crates/cli/src/io.rs", &idx);
            assert!(ws.is_empty(), "{bad} parsed: {ws:?}");
            assert_eq!(fs.len(), 1, "{bad}");
            assert_eq!(fs[0].lint, Lint::Waiver);
        }
    }

    #[test]
    fn serve_admits_no_panic_waivers() {
        let src = "// lint:allow(panic) -- very good reason\nlet x = opt.unwrap();\n";
        let (_, idx) = lex(src);
        let (ws, fs) = scan("crates/serve/src/routes.rs", &idx);
        assert!(ws.is_empty());
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("not permitted"));
        // Other lints still waivable in serve.
        let src = "// lint:allow(lock) -- guard protects the send itself\nlet g = m.lock();\n";
        let (_, idx) = lex(src);
        let (ws, fs) = scan("crates/serve/src/routes.rs", &idx);
        assert_eq!(ws.len(), 1);
        assert!(fs.is_empty());
    }

    #[test]
    fn baseline_round_trip_and_unused_entries() {
        let (entries, fs) = parse_baseline(
            "lint-waivers.txt",
            "# comment\n\ncrates/x/src/lib.rs [panic-path] unwrap\nbroken line\n",
        );
        assert_eq!(entries.len(), 1);
        assert_eq!(fs.len(), 1, "the broken line is a finding");
        let findings = vec![Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            lint: Lint::PanicPath,
            message: "`.unwrap()` in non-test library code".into(),
        }];
        let left = apply_baseline("lint-waivers.txt", findings, &entries);
        assert!(left.is_empty(), "{left:?}");
        // Same baseline against no findings → stale-entry finding.
        let left = apply_baseline("lint-waivers.txt", Vec::new(), &entries);
        assert_eq!(left.len(), 1);
        assert!(left[0].message.contains("stale"));
    }
}
