//! Finding representation and rendering (rustc-style text and `--json`).

use std::fmt;

/// The five lints plus the meta-findings the gate itself produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lint {
    /// `unsafe` outside the allowlist, missing `// SAFETY:` justification,
    /// or a non-allowlisted crate root without `#![forbid(unsafe_code)]`.
    UnsafeAudit,
    /// `unwrap()` / `expect(` / `panic!` / `unreachable!` / `todo!` in
    /// non-test library code.
    PanicPath,
    /// Ambient nondeterminism (`Instant::now`, `SystemTime::now`,
    /// `RandomState`) in an output-affecting crate.
    Determinism,
    /// A lock guard held live across a channel send/recv or file I/O call.
    LockDiscipline,
    /// An error string about a file/path that interpolates nothing.
    ErrorHygiene,
    /// A malformed or disallowed `lint:allow` waiver comment.
    Waiver,
}

impl Lint {
    /// The stable kebab-case name used in reports and waiver files.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Lint::UnsafeAudit => "unsafe-audit",
            Lint::PanicPath => "panic-path",
            Lint::Determinism => "determinism",
            Lint::LockDiscipline => "lock-discipline",
            Lint::ErrorHygiene => "error-hygiene",
            Lint::Waiver => "waiver",
        }
    }

    /// Resolve a waiver key (`panic`, `unsafe`, full names, ...) to a lint.
    #[must_use]
    pub fn from_waiver_key(key: &str) -> Option<Lint> {
        Some(match key {
            "unsafe" | "unsafe-audit" => Lint::UnsafeAudit,
            "panic" | "panic-path" => Lint::PanicPath,
            "determinism" => Lint::Determinism,
            "lock" | "lock-discipline" => Lint::LockDiscipline,
            "error-hygiene" => Lint::ErrorHygiene,
            _ => return None,
        })
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub lint: Lint,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Render findings as the stable machine-readable JSON document emitted
/// by `tt-lint --json` (and uploaded as the `lint.json` CI artifact).
#[must_use]
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"file\":");
        json_string(&mut out, &f.file);
        out.push_str(",\"line\":");
        out.push_str(&f.line.to_string());
        out.push_str(",\"lint\":");
        json_string(&mut out, f.lint.name());
        out.push_str(",\"message\":");
        json_string(&mut out, &f.message);
        out.push('}');
    }
    out.push_str("],\"total\":");
    out.push_str(&findings.len().to_string());
    out.push_str("}\n");
    out
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rustc_style() {
        let f = Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 12,
            lint: Lint::PanicPath,
            message: "`unwrap()` in library code".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/x/src/lib.rs:12: [panic-path] `unwrap()` in library code"
        );
    }

    #[test]
    fn json_escapes_and_counts() {
        let f = Finding {
            file: "a.rs".into(),
            line: 1,
            lint: Lint::UnsafeAudit,
            message: "say \"hi\"\\".into(),
        };
        let j = to_json(&[f]);
        assert!(j.contains("\"total\":1"));
        assert!(j.contains("say \\\"hi\\\"\\\\"));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn waiver_keys_resolve() {
        assert_eq!(Lint::from_waiver_key("panic"), Some(Lint::PanicPath));
        assert_eq!(Lint::from_waiver_key("unsafe"), Some(Lint::UnsafeAudit));
        assert_eq!(Lint::from_waiver_key("lock"), Some(Lint::LockDiscipline));
        assert_eq!(Lint::from_waiver_key("bogus"), None);
    }
}
