//! The workspace policy tables: which lints apply to which files.
//!
//! Paths here are workspace-relative with `/` separators. The tables
//! encode the invariants ROADMAP.md states in prose:
//!
//! * `unsafe` lives only in `tt_trace`'s mmap substrate (`mmap.rs` plus
//!   the two typed-view helpers `op.rs`/`time.rs`); every other crate
//!   root carries `#![forbid(unsafe_code)]`.
//! * Library code never panics; tests, benches, examples and `#[cfg(test)]`
//!   modules may. `crates/serve` additionally admits **no** panic waivers —
//!   its `catch_unwind` backstop is for bugs, not policy.
//! * The output-affecting crates are clock- and hash-order-free;
//!   `tt_par::telemetry` (wall-clock observation) is the one sanctioned
//!   exception, and the bench/serve/cli/facade layers may time things.
//! * The compat shims mimic external crates (`proptest` *must* panic on a
//!   failed property) and are only subject to the unsafe audit.

/// Files allowed to contain `unsafe` (all in `tt-trace`'s mmap substrate).
pub const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/trace/src/mmap.rs",
    "crates/trace/src/op.rs",
    "crates/trace/src/time.rs",
];

/// The one crate whose root may omit `#![forbid(unsafe_code)]`.
pub const FORBID_EXEMPT_ROOTS: &[&str] = &["crates/trace/src/lib.rs"];

/// Crate directories whose library code is subject to the panic-path
/// policy. (`crates/bench` exists to *be* benches and the compat shims
/// mirror external panicking APIs; both are exempt by construction.)
pub const PANIC_CRATE_DIRS: &[&str] = &[
    "crates/trace",
    "crates/stats",
    "crates/device",
    "crates/sim",
    "crates/workloads",
    "crates/core",
    "crates/par",
    "crates/cli",
    "crates/serve",
    "crates/lint",
    "src", // the facade crate
];

/// Paths where a panic waiver is itself a finding: the daemon's request
/// path must be panic-free with no exceptions.
pub const NO_PANIC_WAIVERS: &[&str] = &["crates/serve/src/"];

/// Crate directories whose outputs must be bit-reproducible and therefore
/// may not read ambient clocks or seed hashers randomly.
pub const DETERMINISM_CRATE_DIRS: &[&str] = &[
    "crates/trace",
    "crates/stats",
    "crates/device",
    "crates/sim",
    "crates/workloads",
    "crates/core",
    "crates/par",
];

/// Files exempt from the determinism lint: telemetry observes wall-clock
/// by design (and is property-tested to never steer outputs).
pub const DETERMINISM_ALLOWLIST: &[&str] = &["crates/par/src/telemetry.rs"];

/// How a source file participates in linting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Shipped library/binary code: all lints apply.
    Library,
    /// Tests, benches, examples: unsafe-audit only (panicking asserts and
    /// wall-clock timing are the point of these files).
    TestSupport,
    /// Offline stand-ins for crates.io packages: unsafe-audit only.
    Compat,
}

/// Classify a workspace-relative path; `None` for files tt-lint ignores.
#[must_use]
pub fn classify(rel: &str) -> Option<FileKind> {
    if !rel.ends_with(".rs") || rel.starts_with("target/") {
        return None;
    }
    if rel.starts_with("compat/") {
        return Some(FileKind::Compat);
    }
    if rel.starts_with("tests/") || rel.starts_with("examples/") || rel.starts_with("benches/") {
        return Some(FileKind::TestSupport);
    }
    if rel.starts_with("src/") {
        return Some(FileKind::Library);
    }
    if let Some(rest) = rel.strip_prefix("crates/") {
        let (_crate_dir, inner) = rest.split_once('/')?;
        if inner.starts_with("src/") {
            return Some(FileKind::Library);
        }
        if inner.starts_with("tests/")
            || inner.starts_with("benches/")
            || inner.starts_with("examples/")
        {
            return Some(FileKind::TestSupport);
        }
    }
    None
}

/// `true` when `rel` is a crate root (`src/lib.rs` or `src/main.rs` of
/// the facade, a member crate, or a compat shim).
#[must_use]
pub fn is_crate_root(rel: &str) -> bool {
    if rel == "src/lib.rs" || rel == "src/main.rs" {
        return true;
    }
    for prefix in ["crates/", "compat/"] {
        if let Some(rest) = rel.strip_prefix(prefix) {
            let mut parts = rest.splitn(2, '/');
            let _name = parts.next();
            if let Some(inner) = parts.next() {
                if inner == "src/lib.rs" || inner == "src/main.rs" {
                    return true;
                }
            }
        }
    }
    false
}

/// `true` when `rel` lives under one of the listed directory prefixes.
#[must_use]
pub fn under_any(rel: &str, dirs: &[&str]) -> bool {
    dirs.iter().any(|d| {
        if d.ends_with('/') {
            rel.starts_with(d)
        } else {
            rel.strip_prefix(d)
                .is_some_and(|rest| rest.starts_with('/'))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_layout() {
        assert_eq!(classify("src/pipeline.rs"), Some(FileKind::Library));
        assert_eq!(
            classify("crates/serve/src/routes.rs"),
            Some(FileKind::Library)
        );
        assert_eq!(
            classify("crates/trace/tests/props.rs"),
            Some(FileKind::TestSupport)
        );
        assert_eq!(classify("tests/fused.rs"), Some(FileKind::TestSupport));
        assert_eq!(
            classify("examples/quickstart.rs"),
            Some(FileKind::TestSupport)
        );
        assert_eq!(classify("compat/serde/src/lib.rs"), Some(FileKind::Compat));
        assert_eq!(classify("target/debug/build.rs"), None);
        assert_eq!(classify("README.md"), None);
    }

    #[test]
    fn crate_roots_are_detected() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/sim/src/lib.rs"));
        assert!(is_crate_root("crates/cli/src/main.rs"));
        assert!(is_crate_root("compat/serde/src/lib.rs"));
        assert!(!is_crate_root("crates/sim/src/replay.rs"));
        assert!(!is_crate_root("crates/bench/benches/throughput.rs"));
    }

    #[test]
    fn prefix_matching_requires_a_path_boundary() {
        assert!(under_any("crates/trace/src/lib.rs", &["crates/trace"]));
        assert!(!under_any("crates/tracex/src/lib.rs", &["crates/trace"]));
        assert!(under_any("crates/serve/src/http.rs", NO_PANIC_WAIVERS));
        assert!(!under_any("crates/serve/tests/server.rs", NO_PANIC_WAIVERS));
        assert!(under_any("src/lib.rs", &["src"]));
    }
}
