//! The waiver grammar, end to end through `lint_source`: well-formed
//! waivers suppress exactly their target, malformed ones are findings,
//! and the tt-serve no-panic-waivers policy holds.

use tt_lint::{lint_source, Lint};

#[test]
fn standalone_waiver_covers_the_next_code_line() {
    let src = "// lint:allow(panic) -- boot-time check, no trace loaded\n\
               pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    // The waiver sits two lines above the unwrap — it covers the *next
    // code line* (the fn header), not the unwrap, so the finding stays.
    let findings = lint_source("crates/cli/src/io.rs", src);
    assert_eq!(findings.len(), 1);

    let src = "pub fn f(x: Option<u32>) -> u32 {\n\
                   // lint:allow(panic) -- boot-time check, no trace loaded\n\
                   x.unwrap()\n}\n";
    assert!(lint_source("crates/cli/src/io.rs", src).is_empty());
}

#[test]
fn trailing_waiver_covers_its_own_line() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n\
                   x.unwrap() // lint:allow(panic) -- fixture\n}\n";
    assert!(lint_source("crates/cli/src/io.rs", src).is_empty());
}

#[test]
fn waiver_of_the_wrong_lint_suppresses_nothing() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n\
                   x.unwrap() // lint:allow(determinism) -- wrong lint\n}\n";
    let findings = lint_source("crates/cli/src/io.rs", src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].lint, Lint::PanicPath);
}

#[test]
fn malformed_waivers_are_findings() {
    for (bad, why) in [
        ("// lint:allow(panic)\n", "missing"),
        ("// lint:allow(panic) --\n", "empty reason"),
        ("// lint:allow(bogus) -- reason\n", "unknown lint"),
    ] {
        let findings = lint_source("crates/cli/src/io.rs", bad);
        assert_eq!(findings.len(), 1, "{bad:?}");
        assert_eq!(findings[0].lint, Lint::Waiver);
        assert!(findings[0].message.contains(why), "{}", findings[0]);
    }
}

#[test]
fn prose_mentions_of_the_grammar_are_not_findings() {
    // Documentation quoting the placeholder form must not self-flag.
    let src = "//! Waive with a comment of the form shown in the docs.\n\
               //! (The grammar is described as lint:allow with a reason.)\n";
    assert!(lint_source("crates/cli/src/io.rs", src).is_empty());
}

#[test]
fn serve_request_path_admits_no_panic_waivers() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n\
                   // lint:allow(panic) -- excellent reason\n    x.unwrap()\n}\n";
    let findings = lint_source("crates/serve/src/routes.rs", src);
    // The waiver itself is a finding AND it suppresses nothing: both the
    // policy violation and the original panic-path finding surface.
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().any(|f| f.lint == Lint::Waiver));
    assert!(findings.iter().any(|f| f.lint == Lint::PanicPath));

    // serve's own tests keep their panics (and need no waivers).
    let test_src = "#[test]\nfn t() {\n    Some(1).unwrap();\n}\n";
    assert!(lint_source("crates/serve/tests/server.rs", test_src).is_empty());
}
