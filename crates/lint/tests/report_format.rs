//! The two output contracts: rustc-style text lines and the `--json`
//! document CI uploads as an artifact.

use tt_lint::report::to_json;
use tt_lint::{lint_source, Finding, Lint};

#[test]
fn text_findings_are_rustc_style() {
    let findings = lint_source(
        "crates/sim/src/replay.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    assert_eq!(
        findings[0].to_string(),
        "crates/sim/src/replay.rs:1: [panic-path] `.unwrap()` in non-test \
         library code — return a contextual error instead (or waive with \
         `// lint:allow(panic) -- <reason>`)"
    );
}

#[test]
fn json_document_shape() {
    let findings = lint_source(
        "crates/sim/src/replay.rs",
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    let json = to_json(&findings);
    assert!(json.ends_with('\n'));
    assert!(json.contains("\"total\":1"), "{json}");
    assert!(
        json.contains("\"file\":\"crates/sim/src/replay.rs\""),
        "{json}"
    );
    assert!(json.contains("\"line\":2"), "{json}");
    assert!(json.contains("\"lint\":\"panic-path\""), "{json}");
}

#[test]
fn json_escapes_quotes_and_backslashes() {
    let findings = vec![Finding {
        file: "crates\\odd\\path.rs".to_string(),
        line: 7,
        lint: Lint::ErrorHygiene,
        message: "mentions \"a file\"\twith tabs\nand newlines".to_string(),
    }];
    let json = to_json(&findings);
    assert!(json.contains("crates\\\\odd\\\\path.rs"), "{json}");
    assert!(json.contains("\\\"a file\\\""), "{json}");
    assert!(json.contains("\\t"), "{json}");
    assert!(json.contains("\\n"), "{json}");
    // The document stays one physical line plus the trailing newline.
    assert_eq!(json.trim_end().lines().count(), 1);
}

#[test]
fn empty_findings_are_an_empty_document() {
    let json = to_json(&[]);
    assert!(json.contains("\"findings\":[]"), "{json}");
    assert!(json.contains("\"total\":0"), "{json}");
}
