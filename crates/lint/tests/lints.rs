//! Fixture-driven demonstrations: every lint has a fixture that fails it
//! and a twin that passes, so a regression in either direction (missed
//! finding or false positive) turns a test red.

use tt_lint::{lint_source, Lint};

/// Findings of one lint kind, as (line, lint) pairs for terse asserts.
fn findings_of(rel: &str, src: &str, lint: Lint) -> Vec<u32> {
    lint_source(rel, src)
        .into_iter()
        .filter(|f| f.lint == lint)
        .map(|f| f.line)
        .collect()
}

/// The fixture must produce *only* the expected lint (no collateral
/// findings from the other four).
fn assert_only(rel: &str, src: &str, lint: Lint, lines: &[u32]) {
    let all = lint_source(rel, src);
    let stray: Vec<_> = all.iter().filter(|f| f.lint != lint).collect();
    assert!(stray.is_empty(), "unexpected extra findings: {stray:?}");
    assert_eq!(findings_of(rel, src, lint), lines, "for {rel}");
}

// ---- unsafe-audit ------------------------------------------------------

#[test]
fn unsafe_without_safety_comment_fails() {
    // In the allowlisted file the defect is the missing comment...
    assert_only(
        "crates/trace/src/mmap.rs",
        include_str!("fixtures/unsafe_bad.fixture"),
        Lint::UnsafeAudit,
        &[2],
    );
}

#[test]
fn unsafe_outside_the_allowlist_fails_even_with_a_comment() {
    let findings = lint_source(
        "crates/sim/src/replay.rs",
        include_str!("fixtures/unsafe_good.fixture"),
    );
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].lint, Lint::UnsafeAudit);
    assert!(findings[0].message.contains("outside the sanctioned"));
}

#[test]
fn unsafe_with_safety_comment_in_allowlisted_file_passes() {
    assert!(lint_source(
        "crates/trace/src/mmap.rs",
        include_str!("fixtures/unsafe_good.fixture"),
    )
    .is_empty());
}

#[test]
fn crate_root_without_forbid_fails() {
    let findings = lint_source("crates/device/src/lib.rs", "pub fn f() {}\n");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].lint, Lint::UnsafeAudit);
    assert!(findings[0].message.contains("forbid(unsafe_code)"));

    // With the attribute (and in the one exempt root) the finding clears.
    assert!(lint_source(
        "crates/device/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() {}\n"
    )
    .is_empty());
    assert!(lint_source("crates/trace/src/lib.rs", "pub fn f() {}\n").is_empty());
}

// ---- panic-path --------------------------------------------------------

#[test]
fn every_panic_construct_fails_in_library_code() {
    // unwrap, expect, panic!, todo!, unreachable! — one line each.
    assert_only(
        "crates/sim/src/replay.rs",
        include_str!("fixtures/panic_bad.fixture"),
        Lint::PanicPath,
        &[2, 3, 5, 8, 9],
    );
}

#[test]
fn waived_and_test_module_panics_pass() {
    assert!(lint_source(
        "crates/sim/src/replay.rs",
        include_str!("fixtures/panic_good.fixture"),
    )
    .is_empty());
}

#[test]
fn panics_in_test_support_files_pass() {
    // The same panicking source is fine in tests/, benches/, examples/.
    let src = include_str!("fixtures/panic_bad.fixture");
    assert!(lint_source("crates/sim/tests/props.rs", src).is_empty());
    assert!(lint_source("tests/fused.rs", src).is_empty());
    assert!(lint_source("examples/quickstart.rs", src).is_empty());
}

// ---- determinism -------------------------------------------------------

#[test]
fn ambient_clocks_and_random_state_fail_in_output_affecting_crates() {
    assert_only(
        "crates/sim/src/replay.rs",
        include_str!("fixtures/determinism_bad.fixture"),
        Lint::Determinism,
        &[2, 6],
    );
}

#[test]
fn pure_code_and_test_clocks_pass() {
    assert!(lint_source(
        "crates/sim/src/replay.rs",
        include_str!("fixtures/determinism_good.fixture"),
    )
    .is_empty());
}

#[test]
fn telemetry_and_non_output_crates_are_exempt() {
    let src = include_str!("fixtures/determinism_bad.fixture");
    // The sanctioned wall-clock observer...
    assert!(findings_of("crates/par/src/telemetry.rs", src, Lint::Determinism).is_empty());
    // ...and crates whose outputs are not reproducibility-bearing.
    assert!(findings_of("crates/serve/src/http.rs", src, Lint::Determinism).is_empty());
}

// ---- lock-discipline ---------------------------------------------------

#[test]
fn guard_live_across_send_fails() {
    let findings = lint_source(
        "crates/par/src/fanout.rs",
        include_str!("fixtures/lock_bad.fixture"),
    );
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].lint, Lint::LockDiscipline);
    assert_eq!(findings[0].line, 3);
    assert!(findings[0].message.contains("`depth`"));
}

#[test]
fn guard_dropped_before_send_passes() {
    assert!(lint_source(
        "crates/par/src/fanout.rs",
        include_str!("fixtures/lock_good.fixture"),
    )
    .is_empty());
}

// ---- error-hygiene -----------------------------------------------------

#[test]
fn path_mention_without_interpolation_fails() {
    assert_only(
        "crates/trace/src/store.rs",
        include_str!("fixtures/error_hygiene_bad.fixture"),
        Lint::ErrorHygiene,
        &[2],
    );
}

#[test]
fn interpolated_path_passes() {
    assert!(lint_source(
        "crates/trace/src/store.rs",
        include_str!("fixtures/error_hygiene_good.fixture"),
    )
    .is_empty());
}
