//! The gate itself, as a test: the live workspace must lint clean — and
//! the serve crate must get there with zero panic waivers, which is what
//! the issue's acceptance bar demands.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lint/ -> crates/ -> workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

#[test]
fn live_workspace_is_lint_clean() {
    let root = workspace_root();
    let findings = tt_lint::lint_workspace(&root).expect("workspace walk");
    assert!(
        findings.is_empty(),
        "tt-lint found {} problem(s) in the live workspace:\n{}",
        findings.len(),
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn serve_sources_contain_no_panic_waivers() {
    let serve_src = workspace_root().join("crates/serve/src");
    let mut stack = vec![serve_src];
    let mut checked = 0;
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("serve src readable") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let src = std::fs::read_to_string(&path).expect("readable");
                assert!(
                    !src.contains("lint:allow(panic"),
                    "{} carries a panic waiver — tt-serve must fix, not waive",
                    path.display()
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 0, "no serve sources found — path drift?");
}

#[test]
fn committed_baseline_is_empty() {
    let baseline = workspace_root().join(tt_lint::BASELINE_FILE);
    let content = std::fs::read_to_string(&baseline).expect("baseline committed");
    assert!(
        content
            .lines()
            .all(|l| l.trim().is_empty() || l.trim_start().starts_with('#')),
        "the committed baseline must stay empty (zero-findings-or-fail): {content}"
    );
}
