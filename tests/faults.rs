//! Robustness properties of the fault-injection layer:
//!
//! * a fault-injected replay is **bit-reproducible** given the same
//!   [`FaultPlan`] seed, at every worker count and chunk size — shardable
//!   plans shard, error-capable plans transparently fall back to the
//!   sequential core, and either way the output never depends on the
//!   knobs;
//! * an error-budget decode ([`ErrorPolicy::Skip`] / `Quarantine`) of a
//!   dirty input equals the clean-subset reference run exactly;
//! * retry backoff never reorders completions;
//! * inference on a fault-degraded trace degrades gracefully — finite
//!   estimates in a bounded band around the clean baseline.

use proptest::prelude::*;
use tracetracker::prelude::*;
use tracetracker::sim::RetryPolicy;
use tracetracker::trace::format::csv::CsvSource;
use tracetracker::workloads::faults;
use tt_device::{LinearDevice, LinearDeviceConfig};

/// A mixed sync/async session trace on the old node.
fn old_trace(n: usize, seed: u64) -> Trace {
    let entry = catalog::find("MSNFS").unwrap();
    let session = generate_session("MSNFS", &entry.profile, n, seed);
    let mut node = presets::enterprise_hdd_2007();
    session.materialize(&mut node, false).trace
}

/// Replays `old` open-loop on a fresh faulty array with the given knobs.
fn faulty_replay(old: &Trace, plan: &FaultPlan, workers: usize, chunk: usize) -> Trace {
    let mut device = FaultyDevice::new(presets::intel_750_array(), plan.clone());
    let collected = Pipeline::from_trace_ref(old)
        .chunk_size(chunk)
        .parallel(workers)
        .replay(&mut device, StreamReplay::OpenLoop { time_scale: 1.0 })
        .collect()
        .expect("in-memory replay cannot fail");
    tt_par::set_threads(0);
    collected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same plan, same seed ⇒ identical records at any worker count and
    /// chunk size, for every named scenario — including the unshardable
    /// error plans (which must fall back to the sequential core rather
    /// than change results).
    #[test]
    fn fault_replay_is_knob_invariant(
        seed in 0u64..1000,
        workers in 1usize..5,
        chunk in 1usize..300,
        scenario_ix in 0usize..faults::SCENARIO_NAMES.len(),
    ) {
        let old = old_trace(300, 11);
        let plan = faults::scenario(faults::SCENARIO_NAMES[scenario_ix], seed).unwrap();
        let reference = faulty_replay(&old, &plan, 1, 64);
        let knobbed = faulty_replay(&old, &plan, workers, chunk);
        prop_assert_eq!(reference.records(), knobbed.records());
        prop_assert_eq!(reference.columns(), knobbed.columns());
    }

    /// Skip/Quarantine decode of a dirty CSV equals the abort run over the
    /// clean subset — same records in, same replayed records out.
    #[test]
    fn error_budget_equals_clean_subset(
        chunk in 1usize..200,
        garbage_stride in 2usize..20,
        unlimited in proptest::bool::ANY,
    ) {
        let old = old_trace(200, 23);
        let mut clean_bytes = Vec::new();
        tracetracker::trace::format::csv::write_csv(&old, &mut clean_bytes).unwrap();

        // Inject a garbage line after every `garbage_stride`-th line.
        let mut dirty = String::new();
        let mut injected = 0usize;
        for (i, line) in String::from_utf8(clean_bytes.clone()).unwrap().lines().enumerate() {
            dirty.push_str(line);
            dirty.push('\n');
            if i % garbage_stride == garbage_stride - 1 {
                dirty.push_str("not,a,valid,record,at,all,xyz\n");
                injected += 1;
            }
        }

        let policy = if unlimited {
            ErrorPolicy::quarantine()
        } else {
            ErrorPolicy::skip(injected)
        };
        let tolerant = Pipeline::from_source(CsvSource::new(dirty.as_bytes()), "d")
            .chunk_size(chunk)
            .on_error(policy.clone())
            .collect()
            .unwrap();
        let clean = Pipeline::from_source(CsvSource::new(&clean_bytes[..]), "d")
            .chunk_size(chunk)
            .collect()
            .unwrap();
        prop_assert_eq!(tolerant.records(), clean.records());
        prop_assert_eq!(policy.quarantined(), injected);

        // One bad record past the budget aborts.
        if !unlimited && injected > 0 {
            let tight = Pipeline::from_source(CsvSource::new(dirty.as_bytes()), "d")
                .chunk_size(chunk)
                .on_error(ErrorPolicy::skip(injected - 1))
                .collect();
            prop_assert!(tight.is_err());
        }
    }
}

/// Retry backoff delays an issue but never lets a later request complete
/// out of order on a serialised device: issues and completions stay
/// monotone even when transient errors force retries.
#[test]
fn retry_backoff_never_reorders_completions() {
    let old = old_trace(400, 31);
    let config = LinearDeviceConfig {
        beta_ns_per_sector: 2_000,
        serialize: true,
        ..LinearDeviceConfig::default()
    };
    // Aggressive transient errors: every retry path gets exercised.
    let plan = FaultPlan::new(77).with_error(0.2, 2);
    let mut device = FaultyDevice::new(LinearDevice::new(config), plan);
    let outcome = tracetracker::sim::replay(
        &mut device,
        &Schedule::open_loop(&old, 1.0),
        "retry",
        ReplayConfig {
            retry: RetryPolicy::default(),
            ..ReplayConfig::default()
        },
    );
    assert!(
        !outcome.faults.is_empty(),
        "the plan must actually trigger retries"
    );
    assert!(outcome.faults.iter().all(|f| !f.gave_up && f.attempts > 0));
    let timing: Vec<_> = outcome
        .trace
        .columns()
        .timing_column()
        .iter()
        .map(|t| t.expect("replay collects timing"))
        .collect();
    for pair in timing.windows(2) {
        assert!(
            pair[1].issue >= pair[0].issue,
            "issues must stay monotone under backoff"
        );
        assert!(
            pair[1].complete >= pair[0].complete,
            "completions must stay monotone under backoff"
        );
    }
}

/// Exhausted retries surface as recorded failures, not records: the
/// give-up requests are dropped from the collected trace and flagged in
/// the fault log.
#[test]
fn exhausted_retries_are_recorded_failures() {
    let old = old_trace(300, 37);
    let plan = FaultPlan::new(5).with_error(0.1, 10); // 10 failures > 2 attempts
    let mut device = FaultyDevice::new(presets::intel_750_array(), plan);
    let outcome = tracetracker::sim::replay(
        &mut device,
        &Schedule::open_loop(&old, 1.0),
        "giveup",
        ReplayConfig {
            retry: RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            },
            ..ReplayConfig::default()
        },
    );
    let gave_up = outcome.faults.iter().filter(|f| f.gave_up).count();
    assert!(gave_up > 0, "the plan must exhaust some retries");
    assert_eq!(outcome.trace.len(), old.len() - gave_up);
    assert_eq!(outcome.outcomes.len(), outcome.trace.len());
}

/// Degraded-mode inference: a latency-spiked replay still yields finite,
/// sane estimates in a bounded band around the clean baseline — faults
/// degrade the answer, they don't destroy it.
#[test]
fn inference_degrades_gracefully_under_faults() {
    let old = old_trace(2000, 41);
    let config = InferenceConfig::default();

    let mut clean_dev = presets::intel_750_array();
    let clean = Pipeline::from_trace_ref(&old)
        .replay(&mut clean_dev, StreamReplay::OpenLoop { time_scale: 1.0 })
        .collect()
        .unwrap();
    let clean_est = tracetracker::core::infer(&clean, &config).estimate;

    for name in ["latency-spike", "throttling"] {
        let plan = faults::scenario(name, 7).unwrap();
        let degraded = faulty_replay(&old, &plan, 1, 64);
        let est = tracetracker::core::infer(&degraded, &config).estimate;
        assert!(
            est.beta_ns_per_sector.is_finite() && est.beta_ns_per_sector >= 0.0,
            "{name}: beta must stay sane, got {}",
            est.beta_ns_per_sector
        );
        assert!(
            est.tmovd.as_nanos() <= 20 * clean_est.tmovd.as_nanos().max(1),
            "{name}: Tmovd may inflate under faults but must stay bounded \
             (clean {clean_est:?}, degraded {est:?})"
        );
    }
}
