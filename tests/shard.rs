//! Facade-level sharded-replay properties: `Pipeline` replay stages and
//! the `MultiPipeline` per-stream fan-outs must be bit-identical to their
//! sequential references at every worker count — the worker knob trades
//! cores for wall-clock, never results.

use tracetracker::prelude::*;

fn revived(workload: &str, n: usize, seed: u64) -> Trace {
    let entry = catalog::find(workload).expect("workload in catalog");
    let session = generate_session(workload, &entry.profile, n, seed);
    let mut old_node = presets::enterprise_hdd_2007();
    let old = session.materialize(&mut old_node, false).trace;
    let mut array = presets::intel_750_array();
    Pipeline::from_trace(old)
        .reconstruct(&mut array, TraceTracker::new())
        .collect()
        .expect("in-memory reconstruction cannot fail")
}

#[test]
fn pipeline_replay_stage_is_identical_at_every_worker_count() {
    let trace = revived("MSNFS", 800, 41);
    for mode in [
        StreamReplay::OpenLoop { time_scale: 1.0 },
        StreamReplay::ClosedLoop,
    ] {
        let mut dev = presets::intel_750_array();
        let reference = Pipeline::from_trace_ref(&trace)
            .parallel(1)
            .replay(&mut dev, mode)
            .collect()
            .unwrap();
        for workers in [0usize, 2, 4, 8] {
            let mut dev = presets::intel_750_array();
            let sharded = Pipeline::from_trace_ref(&trace)
                .parallel(workers)
                .replay(&mut dev, mode)
                .collect()
                .unwrap();
            assert_eq!(sharded, reference, "workers={workers} mode={mode:?}");
        }
    }
    tt_par::set_threads(0);
}

#[test]
fn fused_chain_with_sharded_replay_matches_materialized() {
    let entry = catalog::find("webusers").unwrap();
    let session = generate_session("webusers", &entry.profile, 600, 42);
    let mut node = presets::enterprise_hdd_2007();
    let old = session.materialize(&mut node, false).trace;

    let mut d1 = presets::intel_750_array();
    let mut r1 = presets::intel_750_array();
    let reference = Pipeline::from_trace_ref(&old)
        .parallel(1)
        .materialize()
        .reconstruct(&mut d1, TraceTracker::new())
        .replay(&mut r1, StreamReplay::OpenLoop { time_scale: 1.0 })
        .collect()
        .unwrap();

    let mut d2 = presets::intel_750_array();
    let mut r2 = presets::intel_750_array();
    let fused = Pipeline::from_trace_ref(&old)
        .parallel(4)
        .reconstruct(&mut d2, TraceTracker::new())
        .replay(&mut r2, StreamReplay::OpenLoop { time_scale: 1.0 })
        .collect()
        .unwrap();
    assert_eq!(fused, reference);
    tt_par::set_threads(0);
}

#[test]
fn replay_each_matches_single_stream_replays() {
    let traces = vec![
        revived("MSNFS", 300, 43),
        revived("webusers", 250, 44),
        revived("homes", 200, 45),
    ];
    let mode = StreamReplay::OpenLoop { time_scale: 1.0 };
    let reference: Vec<Trace> = traces
        .iter()
        .map(|t| {
            let mut dev = presets::intel_750_array();
            Pipeline::from_trace_ref(t)
                .parallel(1)
                .replay(&mut dev, mode)
                .collect()
                .unwrap()
        })
        .collect();
    for workers in [0usize, 1, 4] {
        let solos = Pipeline::from_trace_refs(&traces)
            .parallel(workers)
            .replay_each(|| Box::new(presets::intel_750_array()), mode)
            .unwrap();
        assert_eq!(solos.len(), traces.len());
        for ((outcome, expect), input) in solos.iter().zip(&reference).zip(&traces) {
            assert_eq!(&outcome.trace, expect, "workers={workers}");
            assert_eq!(outcome.outcomes.len(), input.len());
        }
    }
    tt_par::set_threads(0);
}

#[test]
fn replay_each_rejects_a_concurrent_stage() {
    let traces = vec![revived("MSNFS", 50, 46)];
    let mut dev = presets::intel_750_array();
    let err = Pipeline::from_trace_refs(&traces)
        .replay_concurrent(&mut dev, StreamReplay::ClosedLoop)
        .replay_each(
            || Box::new(presets::intel_750_array()),
            StreamReplay::ClosedLoop,
        )
        .unwrap_err();
    assert!(err.to_string().contains("replay_each"), "{err}");
}

#[test]
fn stageless_fanouts_are_identical_at_every_worker_count() {
    let traces = vec![revived("MSNFS", 200, 47), revived("webusers", 150, 48)];
    let reference = Pipeline::from_trace_refs(&traces)
        .parallel(1)
        .collect_all()
        .unwrap();
    let fanned = Pipeline::from_trace_refs(&traces)
        .parallel(4)
        .collect_all()
        .unwrap();
    assert_eq!(fanned, reference);

    let dir = std::env::temp_dir();
    let paths = [dir.join("tt_shard_ws0.ttb"), dir.join("tt_shard_ws1.csv")];
    let stats = Pipeline::from_trace_refs(&traces)
        .parallel(4)
        .write_paths(&paths)
        .unwrap();
    assert_eq!(stats.len(), 2);
    for (path, expect) in paths.iter().zip(&reference) {
        let back = Pipeline::from_path(path).collect().unwrap();
        assert_eq!(back.records(), expect.records());
        std::fs::remove_file(path).ok();
    }
    tt_par::set_threads(0);
}
