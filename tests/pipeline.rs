//! End-to-end pipeline tests: ground-truth session → OLD/NEW traces →
//! reconstruction methods → accuracy ordering.
//!
//! These encode the paper's headline qualitative claims:
//! * Acceleration and Revision lose idle time (their gaps run shorter than
//!   the real new-system trace);
//! * TraceTracker preserves idle while adapting service time, landing
//!   closest to the real new-system trace.

use tracetracker::core::report::{GapBreakdown, GapStats};
use tracetracker::prelude::*;

/// One session materialised on both generations of storage.
fn old_new_pair(workload: &str, n: usize, seed: u64) -> (Trace, Trace) {
    let entry = catalog::find(workload).expect("workload in catalog");
    let session = generate_session(workload, &entry.profile, n, seed);
    let mut old_node = presets::enterprise_hdd_2007();
    let mut new_node = presets::intel_750_array();
    (
        session.materialize(&mut old_node, false).trace,
        session.materialize(&mut new_node, false).trace,
    )
}

#[test]
fn tracetracker_is_closest_to_the_real_new_system() {
    let (old, new_reference) = old_new_pair("MSNFS", 2_000, 21);

    let mut device = presets::intel_750_array();
    let tt = TraceTracker::new().reconstruct(&old, &mut device);
    let accel = Acceleration::x100().reconstruct(&old, &mut device);
    let rev = Revision::new().reconstruct(&old, &mut device);

    let err = |t: &Trace| GapStats::compare(t, &new_reference).mean_abs;
    let tt_err = err(&tt);
    let accel_err = err(&accel);
    let rev_err = err(&rev);

    assert!(
        tt_err < accel_err,
        "TraceTracker ({tt_err}) should beat Acceleration ({accel_err})"
    );
    assert!(
        tt_err < rev_err,
        "TraceTracker ({tt_err}) should beat Revision ({rev_err})"
    );
}

#[test]
fn acceleration_and_revision_run_short_of_the_target() {
    // Fig 3 shape: both baselines' gaps are predominantly *shorter* than
    // the real new-system gaps because they dropped idle periods. MSNFS
    // has the paper's idle-on-most-gaps structure (short bursts).
    let (old, new_reference) = old_new_pair("MSNFS", 1_500, 22);
    let mut device = presets::intel_750_array();

    for method in [
        &Acceleration::x100() as &dyn Reconstructor,
        &Revision::new(),
    ] {
        let rec = method.reconstruct(&old, &mut device);
        let b = GapBreakdown::compare(&rec, &new_reference, 0.10);
        assert!(
            b.shorter > 0.5 && b.shorter > b.longer,
            "{}: expected mostly-shorter gaps, got shorter={:.2} equal={:.2} longer={:.2}",
            method.name(),
            b.shorter,
            b.equal,
            b.longer
        );
    }
}

#[test]
fn revision_span_is_pure_service_time() {
    let (old, _) = old_new_pair("homes", 1_000, 23);
    let mut device = presets::intel_750_array();
    let rev = Revision::new().reconstruct(&old, &mut device);
    // Old span is dominated by idle; closed-loop replay erases it all.
    assert!(
        rev.span().as_secs_f64() < old.span().as_secs_f64() / 100.0,
        "revision span {} vs old span {}",
        rev.span(),
        old.span()
    );
}

#[test]
fn tracetracker_preserves_total_idle_scale() {
    let (old, new_reference) = old_new_pair("ikki", 1_500, 24);
    let mut device = presets::intel_750_array();
    let tt = TraceTracker::new().reconstruct(&old, &mut device);
    // Span is idle-dominated for FIU workloads: the reconstruction should
    // land within a factor of two of the real new-system span, while
    // Revision collapses by orders of magnitude.
    let ratio = tt.span().as_secs_f64() / new_reference.span().as_secs_f64();
    assert!(
        (0.5..2.0).contains(&ratio),
        "span ratio {ratio} (tt {} vs reference {})",
        tt.span(),
        new_reference.span()
    );
}

#[test]
fn all_methods_preserve_the_request_stream() {
    let (old, _) = old_new_pair("wdev", 600, 25);
    let methods: Vec<Box<dyn Reconstructor>> = vec![
        Box::new(Acceleration::x100()),
        Box::new(Revision::new()),
        Box::new(FixedThreshold::paper_default()),
        Box::new(Dynamic::new()),
        Box::new(TraceTracker::new()),
    ];
    for method in methods {
        let mut device = presets::intel_750_array();
        let rec = method.reconstruct(&old, &mut device);
        assert_eq!(rec.len(), old.len(), "{}", method.name());
        for (a, b) in old.iter().zip(rec.iter()) {
            assert_eq!(
                (a.lba, a.sectors, a.op),
                (b.lba, b.sectors, b.op),
                "{} mutated the request stream",
                method.name()
            );
        }
        // Arrival order must remain intact (Trace invariant would panic
        // otherwise, but assert explicitly for the reader).
        assert!(rec
            .records()
            .windows(2)
            .all(|w| w[0].arrival <= w[1].arrival));
    }
}

#[test]
fn reconstruction_is_deterministic() {
    let (old, _) = old_new_pair("CFS", 800, 26);
    let mut d1 = presets::intel_750_array();
    let mut d2 = presets::intel_750_array();
    let a = TraceTracker::new().reconstruct(&old, &mut d1);
    let b = TraceTracker::new().reconstruct(&old, &mut d2);
    assert_eq!(a.records(), b.records());
}

#[test]
fn facade_prelude_covers_the_pipeline() {
    // Compile-time check that the prelude exposes what an application
    // needs; the assertions are incidental.
    let entry = catalog::find("ts").unwrap();
    let session = generate_session("ts", &entry.profile, 50, 1);
    let mut dev = presets::intel_750();
    let out = session.materialize(&mut dev, true);
    let stats = TraceStats::compute(&out.trace);
    assert_eq!(stats.requests, 50);
    let est = infer(&out.trace, &InferenceConfig::default()).estimate;
    let decomp = Decomposition::compute(&out.trace, &est);
    assert_eq!(decomp.len(), 50);
}
