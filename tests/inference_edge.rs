//! Inference robustness on degenerate and adversarial traces: whatever the
//! input, `infer` must return finite, non-negative parameters and
//! `Decomposition` must uphold its identity.

use tracetracker::core::Decomposition as D;
use tracetracker::prelude::*;

fn assert_estimate_sane(trace: &Trace) {
    let result = infer(trace, &InferenceConfig::default());
    let est = result.estimate;
    assert!(est.beta_ns_per_sector.is_finite() && est.beta_ns_per_sector >= 0.0);
    assert!(est.eta_ns_per_sector.is_finite() && est.eta_ns_per_sector >= 0.0);
    let decomp = D::compute(trace, &est);
    assert_eq!(decomp.len(), trace.len());
    for i in 0..trace.len() {
        assert_eq!(decomp.tslat[i], decomp.tcdel[i] + decomp.tsdev[i]);
    }
}

fn rec(us: u64, lba: u64, sectors: u32, op: OpType) -> BlockRecord {
    BlockRecord::new(SimInstant::from_usecs(us), lba, sectors, op)
}

#[test]
fn write_only_trace() {
    let recs = (0..200)
        .map(|i| rec(i * 150, (i * 977) % 100_000 * 8, 16, OpType::Write))
        .collect();
    let trace = Trace::from_records(TraceMeta::named("w"), recs);
    assert_estimate_sane(&trace);
    // Read parameters must be copied from writes, not zeroed arbitrarily.
    let result = infer(&trace, &InferenceConfig::default());
    assert_eq!(
        result.estimate.beta_ns_per_sector,
        result.estimate.eta_ns_per_sector
    );
}

#[test]
fn read_only_trace() {
    let recs = (0..200)
        .map(|i| rec(i * 90, i * 8, 8, OpType::Read))
        .collect();
    let trace = Trace::from_records(TraceMeta::named("r"), recs);
    assert_estimate_sane(&trace);
}

#[test]
fn zero_gap_burst() {
    // All records at the same instant: every gap is zero.
    let recs = (0..100).map(|i| rec(0, i * 8, 8, OpType::Read)).collect();
    let trace = Trace::from_records(TraceMeta::named("z"), recs);
    assert_estimate_sane(&trace);
    let est = infer(&trace, &InferenceConfig::default()).estimate;
    let d = D::compute(&trace, &est);
    assert_eq!(d.total_idle(), tracetracker::trace::time::SimDuration::ZERO);
}

#[test]
fn single_and_two_record_traces() {
    let one = Trace::from_records(TraceMeta::named("1"), vec![rec(0, 0, 8, OpType::Read)]);
    assert_estimate_sane(&one);
    let two = Trace::from_records(
        TraceMeta::named("2"),
        vec![rec(0, 0, 8, OpType::Read), rec(10, 8, 8, OpType::Write)],
    );
    assert_estimate_sane(&two);
}

#[test]
fn giant_idle_gap_does_not_poison_estimates() {
    // A steady stream with one day-long gap in the middle.
    let mut recs: Vec<BlockRecord> = (0..100)
        .map(|i| rec(i * 200, i * 8, 8, OpType::Read))
        .collect();
    let day_us = 86_400_000_000u64;
    recs.extend((0..100).map(|i| rec(day_us + i * 200, (100 + i) * 8, 8, OpType::Read)));
    let trace = Trace::from_records(TraceMeta::named("g"), recs);
    assert_estimate_sane(&trace);
    let est = infer(&trace, &InferenceConfig::default()).estimate;
    // Tslat for an 8-sector read must stay far below the day gap: the
    // service estimate must come from the 200us stream, not the outlier.
    let slat = est.tslat(
        OpType::Read,
        8,
        tracetracker::trace::Sequentiality::Sequential,
    );
    assert!(
        slat < tracetracker::trace::time::SimDuration::from_msecs(1),
        "slat {slat} poisoned by the day-long gap"
    );
}

#[test]
fn uniform_everything_trace() {
    // One size, one op, one gap value: the most degenerate regular input.
    let recs = (0..300)
        .map(|i| rec(i * 500, (i * 7919) % 1_000_000 * 8, 8, OpType::Read))
        .collect();
    let trace = Trace::from_records(TraceMeta::named("u"), recs);
    assert_estimate_sane(&trace);
}

#[test]
fn reconstruction_survives_degenerate_inputs() {
    let traces = vec![
        Trace::new(),
        Trace::from_records(TraceMeta::named("1"), vec![rec(0, 0, 8, OpType::Read)]),
        Trace::from_records(
            TraceMeta::named("z"),
            (0..50).map(|i| rec(0, i * 8, 8, OpType::Write)).collect(),
        ),
    ];
    for old in &traces {
        let mut device = presets::intel_750_array();
        for method in [
            &TraceTracker::new() as &dyn Reconstructor,
            &Dynamic::new(),
            &Revision::new(),
            &FixedThreshold::paper_default(),
            &Acceleration::x100(),
        ] {
            let out = method.reconstruct(old, &mut device);
            assert_eq!(out.len(), old.len(), "{}", method.name());
        }
    }
}
