//! Cross-crate property-based tests (proptest).

use proptest::prelude::*;

use tracetracker::device::{LinearDevice, LinearDeviceConfig};
use tracetracker::prelude::*;
use tracetracker::sim::ScheduledOp;

fn arb_op() -> impl Strategy<Value = OpType> {
    prop_oneof![Just(OpType::Read), Just(OpType::Write)]
}

fn arb_scheduled_op() -> impl Strategy<Value = ScheduledOp> {
    (
        0u64..5_000_000, // pre-delay ns (0..5ms)
        arb_op(),
        0u64..1_000_000_000, // lba
        1u32..512,           // sectors
        proptest::bool::ANY, // async?
    )
        .prop_map(|(pre_ns, op, lba, sectors, is_async)| ScheduledOp {
            pre_delay: SimDuration::from_nanos(pre_ns),
            request: IoRequest::new(op, lba, sectors),
            mode: if is_async {
                IssueMode::Async
            } else {
                IssueMode::Sync
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replay never reorders and never travels back in time, for any
    /// schedule on any preset device.
    #[test]
    fn replay_preserves_order_and_monotonicity(ops in prop::collection::vec(arb_scheduled_op(), 1..80)) {
        let schedule: Schedule = ops.iter().copied().collect();
        let mut device = presets::intel_750_array();
        let out = replay(&mut device, &schedule, "prop", ReplayConfig::default());
        prop_assert_eq!(out.trace.len(), schedule.len());
        let records = out.trace.records();
        for w in records.windows(2) {
            prop_assert!(w[0].arrival <= w[1].arrival);
        }
        // Collected requests match the schedule exactly, in order.
        for (rec, op) in records.iter().zip(schedule.ops()) {
            prop_assert_eq!(rec.lba, op.request.lba);
            prop_assert_eq!(rec.sectors, op.request.sectors);
            prop_assert_eq!(rec.op, op.request.op);
        }
    }

    /// Scaling every pre-delay up can only lengthen the replay makespan
    /// (metamorphic property of the DES).
    #[test]
    fn longer_idle_never_shortens_makespan(ops in prop::collection::vec(arb_scheduled_op(), 1..50)) {
        let base: Schedule = ops.iter().copied().collect();
        let stretched: Schedule = ops
            .iter()
            .map(|o| ScheduledOp {
                pre_delay: o.pre_delay * 3,
                ..*o
            })
            .collect();
        let mut d1 = LinearDevice::new(LinearDeviceConfig::default());
        let mut d2 = LinearDevice::new(LinearDeviceConfig::default());
        let a = replay(&mut d1, &base, "a", ReplayConfig::default());
        let b = replay(&mut d2, &stretched, "b", ReplayConfig::default());
        prop_assert!(b.makespan >= a.makespan);
    }

    /// Idle injection adds exactly `k x period` to the span and never
    /// reorders records.
    #[test]
    fn injection_adds_exactly_the_injected_time(
        gaps in prop::collection::vec(1u64..100_000u64, 2..100),
        period_us in 1u64..1_000_000,
        seed in 0u64..1000,
    ) {
        let mut t = 0u64;
        let mut recs = vec![BlockRecord::new(SimInstant::ZERO, 0, 8, OpType::Read)];
        for &g in &gaps {
            t += g;
            recs.push(BlockRecord::new(SimInstant::from_usecs(t), 0, 8, OpType::Read));
        }
        let trace = Trace::from_records(TraceMeta::named("p"), recs);
        let period = SimDuration::from_usecs(period_us);
        let (out, truth) = inject_idle(&trace, 0.3, period, seed);
        prop_assert_eq!(out.len(), trace.len());
        let grown = out.span() - trace.span();
        prop_assert_eq!(grown, period * truth.len() as u64);
    }

    /// Acceleration divides every gap by the factor (up to rounding).
    #[test]
    fn acceleration_scales_gaps(
        gaps in prop::collection::vec(1_000u64..10_000_000u64, 2..60),
        factor in 2u32..1000,
    ) {
        let mut t = 0u64;
        let mut recs = vec![BlockRecord::new(SimInstant::ZERO, 0, 8, OpType::Read)];
        for &g in &gaps {
            t += g;
            recs.push(BlockRecord::new(SimInstant::from_usecs(t), 0, 8, OpType::Read));
        }
        let trace = Trace::from_records(TraceMeta::named("p"), recs);
        let mut device = presets::intel_750();
        let accel = Acceleration::new(f64::from(factor)).reconstruct(&trace, &mut device);
        for (i, gap) in trace.inter_arrivals().enumerate() {
            let got = accel.inter_arrival(i).unwrap().as_nanos() as f64;
            let want = gap.as_nanos() as f64 / f64::from(factor);
            prop_assert!((got - want).abs() <= 1.0, "gap {i}: {got} vs {want}");
        }
    }

    /// The decomposition identity: Tidle == saturating(Tintt - Tslat),
    /// and Tslat == Tcdel + Tsdev, for arbitrary estimates and traces.
    #[test]
    fn decomposition_identity(
        gaps in prop::collection::vec(0u64..1_000_000u64, 1..60),
        beta in 0.0f64..10_000.0,
        cdel_us in 0u64..100,
    ) {
        let mut t = 0u64;
        let mut recs = vec![BlockRecord::new(SimInstant::ZERO, 0, 8, OpType::Read)];
        for &g in &gaps {
            t += g;
            recs.push(BlockRecord::new(SimInstant::from_usecs(t), 0, 8, OpType::Read));
        }
        let trace = Trace::from_records(TraceMeta::named("p"), recs);
        let est = DeviceEstimate {
            beta_ns_per_sector: beta,
            eta_ns_per_sector: beta,
            tcdel_read: SimDuration::from_usecs(cdel_us),
            tcdel_write: SimDuration::from_usecs(cdel_us),
            tmovd: SimDuration::ZERO,
        };
        let d = Decomposition::compute(&trace, &est);
        for i in 0..trace.len() {
            prop_assert_eq!(d.tslat[i], d.tcdel[i] + d.tsdev[i]);
            match trace.inter_arrival(i) {
                Some(gap) => prop_assert_eq!(d.tidle[i], gap.saturating_sub(d.tslat[i])),
                None => prop_assert_eq!(d.tidle[i], SimDuration::ZERO),
            }
        }
    }

    /// The full inference pipeline is deterministic across worker counts:
    /// grouping + per-group analysis fan out over threads, yet the inferred
    /// estimate is bit-identical to the sequential path for any session.
    #[test]
    fn parallel_inference_equals_sequential(
        requests in 50usize..400,
        seed in 0u64..200,
        workers in 2usize..6,
    ) {
        let entry = &catalog::table1()[seed as usize % 31];
        let session = generate_session(entry.name, &entry.profile, requests, seed);
        let mut device = presets::enterprise_hdd_2007();
        let trace = session.materialize(&mut device, false).trace;

        tracetracker::par::set_threads(1);
        let sequential = infer(&trace, &InferenceConfig::default());
        tracetracker::par::set_threads(workers);
        let parallel = infer(&trace, &InferenceConfig::default());
        tracetracker::par::set_threads(0);

        prop_assert_eq!(&sequential, &parallel);
        let a = sequential.estimate;
        let b = parallel.estimate;
        prop_assert_eq!(a.beta_ns_per_sector.to_bits(), b.beta_ns_per_sector.to_bits());
        prop_assert_eq!(a.eta_ns_per_sector.to_bits(), b.eta_ns_per_sector.to_bits());
    }

    /// Streaming a reconstruction through the Pipeline into a `CsvSink` is
    /// byte-identical to the free-function path (materialise with
    /// `Reconstructor::reconstruct`, then `write_csv`) — for any workload,
    /// method, and chunk size. This pins the redesigned API to the
    /// pre-`Pipeline` output exactly.
    #[test]
    fn pipeline_streaming_equals_free_functions(
        requests in 40usize..200,
        seed in 0u64..100,
        method_pick in 0usize..5,
        chunk in 1usize..96,
    ) {
        use tracetracker::trace::format::csv::{write_csv, CsvSink};

        let entry = &catalog::table1()[seed as usize % 31];
        let session = generate_session(entry.name, &entry.profile, requests, seed);
        let mut old_node = presets::enterprise_hdd_2007();
        let old = session.materialize(&mut old_node, false).trace;

        let method: Box<dyn Reconstructor> = match method_pick {
            0 => Box::new(TraceTracker::new()),
            1 => Box::new(Dynamic::new()),
            2 => Box::new(Revision::new()),
            3 => Box::new(Acceleration::x100()),
            _ => Box::new(FixedThreshold::paper_default()),
        };

        // Free-function path: materialise, then whole-trace write.
        let mut d1 = presets::intel_750_array();
        let direct = method.reconstruct(&old, &mut d1);
        let mut whole = Vec::new();
        write_csv(&direct, &mut whole).unwrap();

        // Pipeline path: stream into the sink, `chunk` records at a time.
        let mut d2 = presets::intel_750_array();
        let mut streamed = Vec::new();
        let stats = Pipeline::from_trace(old)
            .chunk_size(chunk)
            .reconstruct(&mut d2, method)
            .write_to(&mut CsvSink::new(&mut streamed, direct.meta().name.clone()))
            .unwrap();

        prop_assert_eq!(stats.records, direct.len());
        prop_assert_eq!(stats.span(), direct.span());
        prop_assert_eq!(streamed, whole);
    }

    /// Device service outcomes are deterministic after reset, for random
    /// request streams on the flash array.
    #[test]
    fn flash_array_determinism(
        reqs in prop::collection::vec((arb_op(), 0u64..100_000_000, 1u32..256), 1..40),
    ) {
        let mut d1 = presets::intel_750_array();
        let mut d2 = presets::intel_750_array();
        let mut clock = SimInstant::ZERO;
        for (op, lba, sectors) in reqs {
            let req = IoRequest::new(op, lba, sectors);
            let a = d1.service(&req, clock);
            let b = d2.service(&req, clock);
            prop_assert_eq!(a, b);
            clock = a.complete_at(clock);
        }
    }
}
