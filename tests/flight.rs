//! The flight-recorder contract: telemetry **observes** a pipeline run,
//! it never steers it. A chain with a recorder attached is bit-identical
//! to the same chain without one — collected trace and streamed sink
//! bytes — across chunk sizes, worker counts, and both executors. The
//! recorded [`FlightLog`] itself obeys its invariants: per-stage time
//! columns sum to the stage wall clock, record counts match the data that
//! actually flowed, queue high-water marks respect the channel capacity,
//! and the JSON rendering parses back to the same numbers.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use tracetracker::prelude::*;
use tracetracker::trace::format::csv::CsvSink;
use tracetracker::FUSED_CHANNEL_CHUNKS;

/// One decade-old workload trace, built once and shared by every case.
fn old_trace() -> &'static Trace {
    static TRACE: OnceLock<Trace> = OnceLock::new();
    TRACE.get_or_init(|| {
        let entry = catalog::find("MSNFS").expect("workload in catalog");
        let session = generate_session("MSNFS", &entry.profile, 500, 0xF11E);
        let mut node = presets::enterprise_hdd_2007();
        session.materialize(&mut node, false).trace
    })
}

/// The canonical co-evaluation chain with the given knobs.
fn chain<'env>(
    old: &'env Trace,
    d1: &'env mut dyn BlockDevice,
    d2: &'env mut dyn BlockDevice,
    chunk: usize,
    workers: usize,
    fused: bool,
) -> Pipeline<'env> {
    let mut p = Pipeline::from_trace_ref(old)
        .chunk_size(chunk)
        .parallel(workers)
        .reconstruct(d1, TraceTracker::new())
        .replay(d2, StreamReplay::ClosedLoop);
    if !fused {
        p = p.materialize();
    }
    p
}

/// Every stage's time columns must account for its wall clock exactly
/// (busy is *derived* as wall − send − recv, so the sum is an identity —
/// the check is that no column exceeds wall and nothing went negative),
/// counts must match the run, and queue depths must respect capacity.
fn check_invariants(log: &FlightLog, records: usize, capacity: usize) {
    assert!(!log.stages.is_empty(), "flight log recorded no stages");
    for s in &log.stages {
        assert_eq!(
            s.busy + s.send_wait + s.recv_wait,
            s.wall,
            "stage {:?}: time columns must sum to wall",
            s.stage
        );
        assert!(
            s.queue_high_water <= capacity,
            "stage {:?}: high-water {} exceeds channel capacity {capacity}",
            s.stage,
            s.queue_high_water
        );
        let ratio = s.stall_ratio();
        assert!(
            (0.0..=1.0).contains(&ratio),
            "stage {:?}: stall ratio {ratio} out of [0,1]",
            s.stage
        );
    }
    // Both chain stages are 1:1 record transforms, and the load stage
    // reports the input — every stage saw the full record count.
    for s in &log.stages {
        assert_eq!(
            s.records, records,
            "stage {:?}: records must match the run",
            s.stage
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance property: attaching a recorder changes nothing —
    /// collected trace and streamed CSV bytes — at any chunk size and
    /// worker count, fused or materialised. And the log the run leaves
    /// behind satisfies the telemetry invariants.
    #[test]
    fn recorder_on_equals_recorder_off(
        chunk in 1usize..200,
        workers in 0usize..3,
        fused in proptest::bool::ANY,
    ) {
        let old = old_trace();

        let mut d1 = presets::intel_750_array();
        let mut d2 = presets::intel_750_array();
        let plain = chain(old, &mut d1, &mut d2, chunk, workers, fused)
            .collect()
            .expect("in-memory chain cannot fail");

        let recorder = Arc::new(FlightRecorder::new());
        let mut d3 = presets::intel_750_array();
        let mut d4 = presets::intel_750_array();
        let recorded = chain(old, &mut d3, &mut d4, chunk, workers, fused)
            .flight_recorder(&recorder)
            .collect()
            .expect("in-memory chain cannot fail");
        tt_par::set_threads(0);

        prop_assert_eq!(&plain, &recorded);

        let log = recorder.flight_log();
        prop_assert_eq!(log.chunk_size, chunk);
        prop_assert_eq!(log.stages.len(), 3, "load + reconstruct + replay");
        check_invariants(&log, old.len(), log.channel_capacity.max(FUSED_CHANNEL_CHUNKS));
    }

    /// Streamed terminals too: the recorder leaves the sink bytes
    /// untouched.
    #[test]
    fn recorder_leaves_sink_bytes_identical(
        chunk in 1usize..200,
        fused in proptest::bool::ANY,
    ) {
        let old = old_trace();

        let mut plain_bytes = Vec::new();
        let mut d1 = presets::intel_750_array();
        let mut d2 = presets::intel_750_array();
        chain(old, &mut d1, &mut d2, chunk, 1, fused)
            .write_to(&mut CsvSink::new(&mut plain_bytes, old.meta().name.clone()))
            .expect("in-memory chain cannot fail");

        let recorder = Arc::new(FlightRecorder::new());
        let mut recorded_bytes = Vec::new();
        let mut d3 = presets::intel_750_array();
        let mut d4 = presets::intel_750_array();
        chain(old, &mut d3, &mut d4, chunk, 1, fused)
            .flight_recorder(&recorder)
            .write_to(&mut CsvSink::new(&mut recorded_bytes, old.meta().name.clone()))
            .expect("in-memory chain cannot fail");
        tt_par::set_threads(0);

        prop_assert_eq!(plain_bytes, recorded_bytes);
        prop_assert!(!recorder.is_empty(), "streamed run must leave a log");
    }
}

/// The machine-readable form round-trips: `to_json()` parses, and the
/// parsed document carries the same stages and counts the in-memory log
/// does.
#[test]
fn flight_log_json_parses_and_matches() {
    let old = old_trace();
    let recorder = Arc::new(FlightRecorder::new());
    let mut d1 = presets::intel_750_array();
    let mut d2 = presets::intel_750_array();
    Pipeline::from_trace_ref(old)
        .parallel(1)
        .reconstruct(&mut d1, TraceTracker::new())
        .replay(&mut d2, StreamReplay::ClosedLoop)
        .flight_recorder(&recorder)
        .collect()
        .expect("in-memory chain cannot fail");
    tt_par::set_threads(0);

    let log = recorder.flight_log();
    let json = log.to_json();
    assert!(
        !json.contains('\n'),
        "the JSON form is one line by contract"
    );

    let parsed: serde_json::Value = serde::json::parse(&json).expect("flight log JSON parses");
    for (i, report) in log.stages.iter().enumerate() {
        let value = parsed.get_field("stages").get_index(i);
        assert_eq!(
            value.get_field("stage").as_str(),
            Some(report.stage.as_str())
        );
        assert_eq!(
            value.get_field("records").as_u64(),
            Some(report.records as u64)
        );
        assert_eq!(
            value.get_field("wall_us").as_u64(),
            Some(u64::try_from(report.wall.as_micros()).expect("fits")),
        );
    }
    assert_eq!(
        parsed.get_field("chunk_size").as_u64(),
        Some(log.chunk_size as u64)
    );

    // The human rendering names every stage the JSON does.
    let render = log.render();
    for report in &log.stages {
        assert!(
            render.contains(report.stage.as_str()),
            "render missing stage {:?}:\n{render}",
            report.stage
        );
    }
}

/// `auto()` is output-invariant: the tuned run collects exactly what a
/// pinned sequential run does, and the recorder shows the knobs the
/// tuner actually picked.
#[test]
fn auto_run_is_bit_identical_and_logs_tuned_knobs() {
    let old = old_trace();

    let mut d1 = presets::intel_750_array();
    let mut d2 = presets::intel_750_array();
    let fixed = Pipeline::from_trace_ref(old)
        .parallel(1)
        .reconstruct(&mut d1, TraceTracker::new())
        .replay(&mut d2, StreamReplay::ClosedLoop)
        .collect()
        .expect("in-memory chain cannot fail");

    let recorder = Arc::new(FlightRecorder::new());
    let mut d3 = presets::intel_750_array();
    let mut d4 = presets::intel_750_array();
    let tuned = Pipeline::from_trace_ref(old)
        .auto()
        .reconstruct(&mut d3, TraceTracker::new())
        .replay(&mut d4, StreamReplay::ClosedLoop)
        .flight_recorder(&recorder)
        .collect()
        .expect("in-memory chain cannot fail");
    tt_par::set_threads(0);

    assert_eq!(fixed, tuned);
    let log = recorder.flight_log();
    assert_eq!(log.chunk_size, tracetracker::tune::tuned_chunk(old.len()));
    assert!(log.channel_capacity >= 1);
}
