//! Closed-loop inference validation: traces generated on a device with
//! *known* linear parameters must yield estimates near those parameters.
//!
//! This is the strongest test the paper could not run — it had no ground
//! truth for its 577 traces; we built the device, so we do.

use tracetracker::core::{DeltaEstimator, InterpolationKind, OpFallback};
use tracetracker::device::{LinearDevice, LinearDeviceConfig};
use tracetracker::prelude::*;
use tracetracker::sim::{IssueMode as Mode, ScheduledOp};

fn device_config() -> LinearDeviceConfig {
    LinearDeviceConfig {
        beta_ns_per_sector: 2_000,
        eta_ns_per_sector: 4_000,
        tcdel_read: SimDuration::from_usecs(10),
        tcdel_write: SimDuration::from_usecs(14),
        tmovd: SimDuration::from_msecs(8),
        serialize: true,
    }
}

/// Structured workload on the known device: sequential runs of two sizes
/// per op, random accesses, think time, occasional idle.
fn known_device_trace(n: usize) -> Trace {
    let mut schedule = Schedule::new();
    let mut lba = 0u64;
    let mut k = 0usize;
    while schedule.len() < n {
        let phase = k % 5;
        k += 1;
        let (op, sectors, random) = match phase {
            0 => (OpType::Read, 8u32, false),
            1 => (OpType::Read, 64, false),
            2 => (OpType::Write, 8, false),
            3 => (OpType::Write, 64, false),
            _ => (OpType::Write, 16, true),
        };
        for j in 0..10 {
            if random {
                lba = (lba + 7_777_777) % 1_000_000_000;
            }
            schedule.push(ScheduledOp {
                pre_delay: if j == 0 {
                    SimDuration::from_msecs(60)
                } else {
                    SimDuration::from_usecs(40)
                },
                request: IoRequest::new(op, lba, sectors),
                mode: Mode::Sync,
            });
            lba += u64::from(sectors);
        }
    }
    let mut dev = LinearDevice::new(device_config());
    replay(&mut dev, &schedule, "known", ReplayConfig::default()).trace
}

#[test]
fn beta_and_eta_recovered_within_tolerance() {
    let trace = known_device_trace(1_500);
    let result = infer(&trace, &InferenceConfig::default());
    let est = result.estimate;

    let rel = |got: f64, want: f64| (got - want).abs() / want;
    assert!(
        rel(est.beta_ns_per_sector, 2_000.0) < 0.25,
        "beta {} want 2000",
        est.beta_ns_per_sector
    );
    assert!(
        rel(est.eta_ns_per_sector, 4_000.0) < 0.25,
        "eta {} want 4000",
        est.eta_ns_per_sector
    );
    assert_eq!(result.read.fallback, OpFallback::None);
    assert_eq!(result.write.fallback, OpFallback::None);
}

#[test]
fn tmovd_recovered_within_factor_two() {
    let trace = known_device_trace(1_500);
    let est = infer(&trace, &InferenceConfig::default()).estimate;
    let got_ms = est.tmovd.as_msecs_f64();
    assert!((4.0..16.0).contains(&got_ms), "tmovd {got_ms}ms want ~8ms");
}

#[test]
fn tcdel_absorbs_constant_think_time() {
    // The 40us think rides on every gap; the inference cannot separate it
    // from the channel delay (neither could the paper). Tcdel should land
    // near true Tcdel + think.
    let trace = known_device_trace(1_500);
    let est = infer(&trace, &InferenceConfig::default()).estimate;
    let got = est.tcdel_read.as_usecs_f64();
    assert!((5.0..150.0).contains(&got), "tcdel_read {got}us");
}

#[test]
fn decomposition_recovers_idle_magnitude() {
    let trace = known_device_trace(1_000);
    let est = infer(&trace, &InferenceConfig::default()).estimate;
    let decomp = Decomposition::compute(&trace, &est);
    // One 60ms idle per 10-request phase block.
    let long_idles = decomp
        .tidle
        .iter()
        .filter(|t| t.as_msecs_f64() > 30.0)
        .count();
    let phases = trace.len() / 10;
    let ratio = long_idles as f64 / phases as f64;
    assert!(
        (0.8..1.2).contains(&ratio),
        "found {long_idles} long idles across {phases} phases"
    );
}

#[test]
fn tsdev_known_traces_bypass_model_error() {
    // Same workload but with recorded device timing: the decomposition
    // should use the measured times, making idle recovery nearly exact.
    let mut schedule = Schedule::new();
    let mut lba = 0u64;
    for i in 0..500usize {
        schedule.push(ScheduledOp {
            pre_delay: if i % 10 == 0 {
                SimDuration::from_msecs(25)
            } else {
                SimDuration::ZERO
            },
            request: IoRequest::new(OpType::Read, lba, 8),
            mode: Mode::Sync,
        });
        lba += 8;
    }
    let mut dev = LinearDevice::new(device_config());
    let trace = replay(&mut dev, &schedule, "known", ReplayConfig::default()).trace;
    assert!(trace.has_device_timing());

    let est = infer(&trace, &InferenceConfig::default()).estimate;
    let decomp = Decomposition::compute(&trace, &est);
    let long_idles = decomp
        .tidle
        .iter()
        .filter(|t| t.as_msecs_f64() > 20.0)
        .count();
    assert_eq!(long_idles, 49); // 50 phase starts minus the first request
}

#[test]
fn estimator_variants_stay_in_range() {
    let trace = known_device_trace(1_000);
    for delta in [DeltaEstimator::SteepestOffset, DeltaEstimator::CdfDiff] {
        for interp in [InterpolationKind::Pchip, InterpolationKind::Spline] {
            let cfg = InferenceConfig {
                delta_estimator: delta,
                interpolation: interp,
                ..InferenceConfig::default()
            };
            let est = infer(&trace, &cfg).estimate;
            assert!(
                est.beta_ns_per_sector.is_finite() && est.beta_ns_per_sector >= 0.0,
                "{delta:?}/{interp:?}: beta {}",
                est.beta_ns_per_sector
            );
        }
    }
}

#[test]
fn uniform_size_workload_uses_fallback() {
    // Single request size: the two-group solve is impossible; the
    // inference must take a documented fallback, not crash.
    let mut schedule = Schedule::new();
    for i in 0..300u64 {
        schedule.push(ScheduledOp {
            pre_delay: SimDuration::from_usecs(500),
            request: IoRequest::new(OpType::Read, i * 6_000_000 % 900_000_000, 8),
            mode: Mode::Sync,
        });
    }
    let mut dev = LinearDevice::new(device_config());
    let trace = replay(
        &mut dev,
        &schedule,
        "uniform",
        ReplayConfig {
            record_device_timing: false,
            ..ReplayConfig::default()
        },
    )
    .trace;
    let result = infer(&trace, &InferenceConfig::default());
    assert_ne!(result.read.fallback, OpFallback::None);
    assert!(result.estimate.beta_ns_per_sector >= 0.0);
}
