//! Cross-crate equivalence of the zero-copy mmap path: every analysis
//! that consumes a [`Columns`] view — grouping, statistics, inference,
//! decomposition, schedule building — must produce **identical** results
//! off a memory-mapped `.ttb` file and off the owned trace it was written
//! from, and adversarial files must be rejected cleanly under both paths.

use tracetracker::prelude::*;
use tracetracker::trace::format::ttb::MmapTrace;
use tracetracker::trace::time::SimDuration;
use tt_core::{infer_columns, Decomposition};
use tt_sim::Schedule;
use tt_trace::{GroupedTrace, TraceStats};

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tt_mmap_it_{}_{name}", std::process::id()))
}

/// A realistic session on a simulated device: sequential runs of several
/// sizes per op, random jumps, idle gaps, device-side timing optional.
fn session_trace(n: usize, timing: bool) -> Trace {
    let entry = catalog::find("MSNFS").expect("MSNFS in catalog");
    let session = generate_session("MSNFS", &entry.profile, n, 0x5EED);
    let mut device = presets::enterprise_hdd_2007();
    session.materialize(&mut device, timing).trace
}

#[test]
fn mapped_analysis_is_bit_identical_to_owned() {
    for timing in [false, true] {
        let trace = session_trace(2_000, timing);
        let path = temp(&format!("eq_{timing}.ttb"));
        trace
            .write_ttb(std::fs::File::create(&path).unwrap())
            .unwrap();

        let mapped = MmapTrace::open(&path).unwrap();
        assert!(mapped.is_zero_copy(), "single-block v2 file must map");
        let cols = mapped.columns();

        // Grouping and statistics.
        assert_eq!(
            GroupedTrace::build_columns(cols),
            GroupedTrace::build(&trace),
            "timing {timing}"
        );
        assert_eq!(
            TraceStats::compute_columns(cols),
            TraceStats::compute(&trace)
        );

        // Full inference, including the grid scans and ECDF sorts.
        let cfg = InferenceConfig::default();
        let owned = tt_core::infer(&trace, &cfg);
        let via_map = infer_columns(cols, &cfg);
        assert_eq!(via_map, owned);
        assert_eq!(
            via_map.estimate.beta_ns_per_sector.to_bits(),
            owned.estimate.beta_ns_per_sector.to_bits()
        );

        // Decomposition off the mapped columns.
        assert_eq!(
            Decomposition::compute_columns(cols, &owned.estimate),
            Decomposition::compute(&trace, &owned.estimate)
        );

        // Schedule building (replay input) off the mapped columns.
        let closed_map: Vec<_> = Schedule::closed_loop_ops_columns(cols).collect();
        let closed_own: Vec<_> = Schedule::closed_loop_ops(&trace).collect();
        assert_eq!(closed_map, closed_own);
        let open_map: Vec<_> = Schedule::open_loop_ops_columns(cols, 0.5).collect();
        let open_own: Vec<_> = Schedule::open_loop_ops(&trace, 0.5).collect();
        assert_eq!(open_map, open_own);

        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn mapped_and_bulk_pipelines_agree_through_the_facade() {
    let trace = session_trace(1_500, false);
    let path = temp("facade.ttb");
    Pipeline::from_trace_ref(&trace).write_path(&path).unwrap();

    let cfg = InferenceConfig::default();
    let mapped = Pipeline::from_path(&path).infer(&cfg).unwrap();
    let bulk = Pipeline::from_path(&path).mmap(false).infer(&cfg).unwrap();
    let owned = Pipeline::from_trace_ref(&trace).infer(&cfg).unwrap();
    assert_eq!(mapped, bulk);
    assert_eq!(mapped, owned);
    std::fs::remove_file(&path).ok();
}

#[test]
fn adversarial_ttb_files_are_rejected_under_both_paths() {
    let trace = session_trace(64, true);
    let path = temp("adv.ttb");
    trace
        .write_ttb(std::fs::File::create(&path).unwrap())
        .unwrap();
    let good = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let check = |bytes: &[u8], what: &str| {
        let bad = temp("adv_case.ttb");
        std::fs::write(&bad, bytes).unwrap();
        // Mapped (default) and bulk paths reject with the same message.
        let e_map = Pipeline::from_path(&bad).stats().unwrap_err().to_string();
        let e_bulk = Pipeline::from_path(&bad)
            .mmap(false)
            .stats()
            .unwrap_err()
            .to_string();
        assert_eq!(e_map, e_bulk, "{what}");
        // Direct MmapTrace::open rejects too (no path-context prefix).
        assert!(MmapTrace::open(&bad).is_err(), "{what}");
        std::fs::remove_file(&bad).ok();
        e_map
    };

    // File shorter than the header.
    let e = check(&good[..7], "short header");
    assert!(e.contains("truncated TTB file"), "{e}");
    // Truncated mid-column.
    let e = check(&good[..good.len() * 2 / 3], "mid-column cut");
    assert!(e.contains("truncated TTB file"), "{e}");
    // Trailer total tampered.
    let mut forged = good.clone();
    let total_off = forged.len() - 8;
    forged[total_off] ^= 0x55;
    let e = check(&forged, "trailer mismatch");
    assert!(e.contains("records but"), "{e}");
    // Trailing garbage.
    let mut trailing = good.clone();
    trailing.extend_from_slice(b"junk");
    let e = check(&trailing, "trailing bytes");
    assert!(e.contains("trailing data"), "{e}");
}

#[test]
fn verify_terminal_runs_off_the_mapped_input() {
    // Verification needs an owned copy (idle injection mutates arrivals);
    // the mapped input must still produce the exact owned-path result.
    let trace = session_trace(1_200, false);
    let path = temp("verify.ttb");
    Pipeline::from_trace_ref(&trace).write_path(&path).unwrap();

    let cfg = tt_core::VerifyConfig::default();
    let period = SimDuration::from_msecs(10);
    let mapped = Pipeline::from_path(&path).verify(period, &cfg).unwrap();
    let bulk = Pipeline::from_path(&path)
        .mmap(false)
        .verify(period, &cfg)
        .unwrap();
    assert_eq!(mapped, bulk);
    std::fs::remove_file(&path).ok();
}

#[test]
fn from_mapped_terminals_match_every_other_input_shape() {
    // The resident-service input shape: a borrowed, already-validated
    // mapping. Its stage-less terminals read the columns in place and
    // must agree exactly with the path-input and owned-trace pipelines.
    let trace = session_trace(1_000, true);
    let path = temp("from_mapped.ttb");
    Pipeline::from_trace_ref(&trace).write_path(&path).unwrap();
    let mapped = MmapTrace::open(&path).unwrap();

    let cfg = InferenceConfig::default();
    assert_eq!(
        Pipeline::from_mapped(&mapped).stats().unwrap(),
        Pipeline::from_path(&path).stats().unwrap()
    );
    assert_eq!(
        Pipeline::from_mapped(&mapped).group().unwrap(),
        Pipeline::from_trace_ref(&trace).group().unwrap()
    );
    assert_eq!(
        Pipeline::from_mapped(&mapped).infer(&cfg).unwrap(),
        Pipeline::from_trace_ref(&trace).infer(&cfg).unwrap()
    );

    // Owning terminals copy the mapped columns out once and still agree.
    let vcfg = tt_core::VerifyConfig::default();
    let period = SimDuration::from_msecs(10);
    assert_eq!(
        Pipeline::from_mapped(&mapped)
            .verify(period, &vcfg)
            .unwrap(),
        Pipeline::from_path(&path).verify(period, &vcfg).unwrap()
    );
    assert_eq!(
        Pipeline::from_mapped(&mapped).collect().unwrap(),
        Pipeline::from_path(&path).collect().unwrap()
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn concurrent_shared_mapping_readers_are_bit_identical_to_sequential() {
    // N threads running stats/group/infer off ONE `Arc<MmapTrace>` (the
    // tt-serve sharing model, via `tt_trace::MmapRegistry`) must produce
    // results bit-identical to a sequential single-reader run.
    use std::sync::Arc;

    let trace = session_trace(2_000, true);
    let path = temp("shared_conc.ttb");
    Pipeline::from_trace_ref(&trace).write_path(&path).unwrap();

    let registry = tt_trace::MmapRegistry::new();
    let mapped: Arc<MmapTrace> = registry.open("shared", &path).unwrap();
    assert!(Arc::ptr_eq(
        &mapped,
        &registry.open("shared", &path).unwrap()
    ));

    let cfg = InferenceConfig::default();
    let baseline_stats = Pipeline::from_mapped(&mapped).stats().unwrap();
    let baseline_group = Pipeline::from_mapped(&mapped).group().unwrap();
    let baseline_infer = Pipeline::from_mapped(&mapped).infer(&cfg).unwrap();

    std::thread::scope(|scope| {
        for worker in 0..12 {
            let mapped = Arc::clone(&mapped);
            let (bs, bg, bi) = (&baseline_stats, &baseline_group, &baseline_infer);
            let cfg = &cfg;
            scope.spawn(move || match worker % 3 {
                0 => assert_eq!(&Pipeline::from_mapped(&mapped).stats().unwrap(), bs),
                1 => assert_eq!(&Pipeline::from_mapped(&mapped).group().unwrap(), bg),
                _ => assert_eq!(&Pipeline::from_mapped(&mapped).infer(cfg).unwrap(), bi),
            });
        }
    });
    std::fs::remove_file(&path).ok();
}
