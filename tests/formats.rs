//! Trace format integration: file round-trips feeding the pipeline.

use std::fs;

use tracetracker::prelude::*;
use tracetracker::trace::format::{blk, csv, ttb};

fn sample_trace(with_timing: bool) -> Trace {
    let entry = catalog::find("prxy").unwrap();
    let session = generate_session("prxy", &entry.profile, 300, 17);
    let mut dev = presets::enterprise_hdd_2007();
    session.materialize(&mut dev, with_timing).trace
}

#[test]
fn csv_file_round_trip() {
    let trace = sample_trace(true);
    let path = std::env::temp_dir().join("tt_roundtrip.csv");
    let mut file = fs::File::create(&path).unwrap();
    csv::write_csv(&trace, &mut file).unwrap();
    drop(file);

    let reader = std::io::BufReader::new(fs::File::open(&path).unwrap());
    let back = csv::read_csv(reader, "prxy").unwrap();
    assert_eq!(back.records(), trace.records());
    fs::remove_file(&path).ok();
}

#[test]
fn blk_file_round_trip() {
    let trace = sample_trace(true);
    let path = std::env::temp_dir().join("tt_roundtrip.blk");
    let mut file = fs::File::create(&path).unwrap();
    blk::write_blk(&trace, &mut file).unwrap();
    drop(file);

    let reader = std::io::BufReader::new(fs::File::open(&path).unwrap());
    let back = blk::read_blk(reader, "prxy").unwrap();
    assert_eq!(back.records(), trace.records());
    fs::remove_file(&path).ok();
}

#[test]
fn ttb_file_round_trip() {
    let trace = sample_trace(true);
    let path = std::env::temp_dir().join("tt_roundtrip.ttb");
    let mut file = fs::File::create(&path).unwrap();
    ttb::write_ttb(&trace, &mut file).unwrap();
    drop(file);

    let reader = std::io::BufReader::new(fs::File::open(&path).unwrap());
    let back = ttb::read_ttb(reader, "prxy").unwrap();
    assert_eq!(back.records(), trace.records());
    assert_eq!(back.columns(), trace.columns());
    fs::remove_file(&path).ok();
}

#[test]
fn ttb_cache_matches_csv_through_the_pipeline() {
    // The convert-once workflow: csv -> ttb via the pipeline, then both
    // files must load to the same records and the same inference result.
    let trace = sample_trace(true);
    let csv_path = std::env::temp_dir().join("tt_cache_src.csv");
    let ttb_path = std::env::temp_dir().join("tt_cache_src.ttb");
    Pipeline::from_trace_ref(&trace)
        .write_path(&csv_path)
        .unwrap();
    Pipeline::from_path(&csv_path)
        .write_path(&ttb_path)
        .unwrap();

    let from_csv = Pipeline::from_path(&csv_path).collect().unwrap();
    let from_ttb = Pipeline::from_path(&ttb_path).collect().unwrap();
    assert_eq!(from_ttb.records(), from_csv.records());

    let cfg = InferenceConfig::default();
    assert_eq!(
        infer(&from_csv, &cfg).estimate,
        infer(&from_ttb, &cfg).estimate
    );
    fs::remove_file(&csv_path).ok();
    fs::remove_file(&ttb_path).ok();
}

#[test]
fn formats_cross_agree_on_inference() {
    // Writing and re-reading a trace must not change what the pipeline
    // infers from it.
    let trace = sample_trace(false);
    let mut buf = Vec::new();
    csv::write_csv(&trace, &mut buf).unwrap();
    let re_read = csv::read_csv(buf.as_slice(), "prxy").unwrap();

    let cfg = InferenceConfig::default();
    let a = infer(&trace, &cfg).estimate;
    let b = infer(&re_read, &cfg).estimate;
    // CSV stores microseconds with 3 decimals = ns resolution: identical.
    assert_eq!(a, b);
}

#[test]
fn timing_survives_only_when_recorded() {
    let with = sample_trace(true);
    let without = sample_trace(false);
    assert!(with.has_device_timing());
    assert!(!without.has_device_timing());

    for trace in [&with, &without] {
        let mut buf = Vec::new();
        csv::write_csv(trace, &mut buf).unwrap();
        let back = csv::read_csv(buf.as_slice(), "x").unwrap();
        assert_eq!(back.has_device_timing(), trace.has_device_timing());
    }
}

#[test]
fn serde_json_round_trip() {
    // Traces are data structures (C-SERDE): serde must round-trip them.
    let trace = sample_trace(true);
    let json = serde_json::to_string(&trace).unwrap();
    let back: Trace = serde_json::from_str(&json).unwrap();
    assert_eq!(back, trace);
}
