//! The fused-executor contract: a multi-stage `Pipeline` chain run fused
//! (stage workers + bounded channels) is **bit-identical** to the
//! materialised stage-at-a-time executor — across chunk sizes, worker
//! counts, chain shapes, and terminals — while never materialising the
//! intermediate stream (witnessed by the channel probe). Plus the
//! multi-stream fan-in: merge determinism under duplicate arrivals, and
//! pipeline concurrent replay matching the direct `tt_sim` reference.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use tracetracker::prelude::*;
use tracetracker::trace::format::csv::CsvSink;
use tracetracker::FUSED_CHANNEL_CHUNKS;

/// One decade-old workload trace, built once and shared by every case.
fn old_trace() -> &'static Trace {
    static TRACE: OnceLock<Trace> = OnceLock::new();
    TRACE.get_or_init(|| {
        let entry = catalog::find("MSNFS").expect("workload in catalog");
        let session = generate_session("MSNFS", &entry.profile, 600, 0xF5ED);
        let mut node = presets::enterprise_hdd_2007();
        session.materialize(&mut node, false).trace
    })
}

/// Builds the canonical two-stage co-evaluation chain over `old`:
/// reconstruct onto a flash array, then replay the result on a second
/// array in `mode`.
fn chain<'env>(
    old: &'env Trace,
    d1: &'env mut dyn BlockDevice,
    d2: &'env mut dyn BlockDevice,
    mode: StreamReplay,
    chunk: usize,
    workers: usize,
) -> Pipeline<'env> {
    Pipeline::from_trace_ref(old)
        .chunk_size(chunk)
        .parallel(workers)
        .reconstruct(d1, TraceTracker::new())
        .replay(d2, mode)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance property: a fused `reconstruct → replay` chain is
    /// bit-identical to the materialised chain — collected trace (records
    /// *and* metadata) and streamed sink bytes — at any chunk size and
    /// worker count, in both replay modes.
    #[test]
    fn fused_chain_equals_materialised(
        chunk in 1usize..200,
        workers in 0usize..5,
        closed in proptest::bool::ANY,
    ) {
        let old = old_trace();
        let mode = if closed {
            StreamReplay::ClosedLoop
        } else {
            StreamReplay::OpenLoop { time_scale: 1.0 }
        };

        let mut d1 = presets::intel_750_array();
        let mut d2 = presets::intel_750_array();
        let fused = chain(old, &mut d1, &mut d2, mode, chunk, workers)
            .collect()
            .unwrap();

        let mut d3 = presets::intel_750_array();
        let mut d4 = presets::intel_750_array();
        let materialised = chain(old, &mut d3, &mut d4, mode, chunk, workers)
            .materialize()
            .collect()
            .unwrap();
        prop_assert_eq!(&fused, &materialised);
        prop_assert_eq!(fused.meta(), materialised.meta());

        // The sink-terminated run streams the same bytes.
        let mut fused_bytes = Vec::new();
        let mut d5 = presets::intel_750_array();
        let mut d6 = presets::intel_750_array();
        chain(old, &mut d5, &mut d6, mode, chunk, workers)
            .write_to(&mut CsvSink::new(&mut fused_bytes, old.meta().name.clone()))
            .unwrap();
        let mut mat_bytes = Vec::new();
        let mut d7 = presets::intel_750_array();
        let mut d8 = presets::intel_750_array();
        chain(old, &mut d7, &mut d8, mode, chunk, workers)
            .materialize()
            .write_to(&mut CsvSink::new(&mut mat_bytes, old.meta().name.clone()))
            .unwrap();
        prop_assert_eq!(fused_bytes, mat_bytes);
        tt_par::set_threads(0);
    }

    /// Merging streams with heavy arrival-timestamp collisions is
    /// deterministic: equal to a stable sort of the concatenated tagged
    /// records by (arrival, stream index), at any chunk size.
    #[test]
    fn multi_source_merge_with_duplicate_arrivals(
        streams in prop::collection::vec(
            prop::collection::vec((0u64..40, 0u64..1_000_000), 0..60),
            1..5,
        ),
        chunk in 1usize..64,
    ) {
        // Coarse arrival grid (0..40us) over up to 60 records per stream:
        // ties within and across streams are the norm, not the exception.
        let streams: Vec<Vec<BlockRecord>> = streams
            .into_iter()
            .map(|recs| {
                let mut recs: Vec<BlockRecord> = recs
                    .into_iter()
                    .map(|(us, lba)| {
                        BlockRecord::new(SimInstant::from_usecs(us), lba, 8, OpType::Read)
                    })
                    .collect();
                recs.sort_by_key(|r| r.arrival); // per-stream order contract
                recs
            })
            .collect();

        let mut reference: Vec<(u32, BlockRecord)> = streams
            .iter()
            .enumerate()
            .flat_map(|(i, recs)| recs.iter().map(move |&r| (i as u32, r)))
            .collect();
        reference.sort_by_key(|(stream, rec)| (rec.arrival, *stream));

        let mut multi = MultiSource::new(
            streams
                .iter()
                .enumerate()
                .map(|(i, recs)| {
                    (
                        format!("s{i}"),
                        Box::new(tracetracker::trace::source::VecSource::new(recs.clone()))
                            as Box<dyn RecordSource>,
                    )
                })
                .collect(),
        )
        .with_chunk(chunk);
        let mut merged = Vec::new();
        while multi.next_tagged(&mut merged, chunk).unwrap() > 0 {}

        prop_assert_eq!(merged.len(), reference.len());
        for (got, (stream, rec)) in merged.iter().zip(&reference) {
            prop_assert_eq!(got.stream, *stream);
            prop_assert_eq!(&got.record, rec);
        }
    }
}

/// The "never a second trace" witness: across a fused chain the channel
/// probe sees many chunks flow but never more than the channel capacity
/// in flight, so peak intermediate buffering is `capacity × chunk`
/// records — independent of the trace length.
#[test]
fn fused_chain_bounds_intermediate_buffering() {
    let old = old_trace();
    let chunk = 16; // 600 records -> ~38 chunks through the boundary
    let probe = Arc::new(ChannelProbe::new());
    let mut d1 = presets::intel_750_array();
    let mut d2 = presets::intel_750_array();
    let out = Pipeline::from_trace_ref(old)
        .chunk_size(chunk)
        .channel_probe(&probe)
        .reconstruct(&mut d1, TraceTracker::new())
        .replay(&mut d2, StreamReplay::ClosedLoop)
        .collect()
        .unwrap();
    assert_eq!(out.len(), old.len());

    let min_chunks = old.len() / chunk;
    assert!(
        probe.chunks() >= min_chunks,
        "expected >= {min_chunks} chunks through the boundary, saw {}",
        probe.chunks()
    );
    assert!(
        probe.peak_depth() <= FUSED_CHANNEL_CHUNKS,
        "peak depth {} exceeded the channel capacity {FUSED_CHANNEL_CHUNKS}",
        probe.peak_depth()
    );
    // The bound is what makes this streaming: peak in-flight records are a
    // small constant multiple of the chunk size, far below the stream.
    assert!(probe.peak_depth() * chunk < old.len() / 2);
}

/// A three-stage chain exercises a worker-to-worker channel boundary
/// (stage 1 feeds stage 2 off the calling thread) — still bit-identical
/// to the materialised executor.
#[test]
fn three_stage_chain_fused_equals_materialised() {
    let old = old_trace();
    let run = |materialise: bool| {
        let mut d1 = presets::intel_750_array();
        let mut d2 = presets::intel_750_array();
        let mut d3 = presets::intel_750_array();
        let p = Pipeline::from_trace_ref(old)
            .chunk_size(37)
            .reconstruct(&mut d1, TraceTracker::new())
            .replay(&mut d2, StreamReplay::OpenLoop { time_scale: 1.0 })
            .replay(&mut d3, StreamReplay::ClosedLoop);
        let p = if materialise { p.materialize() } else { p };
        p.collect().unwrap()
    };
    assert_eq!(run(false), run(true));
}

/// A chain ending in an analysis terminal routes through the same fused
/// executor and matches the materialised analysis exactly.
#[test]
fn fused_chain_analysis_terminals_match() {
    let old = old_trace();
    let analyse = |materialise: bool| {
        let mut d1 = presets::intel_750_array();
        let mut d2 = presets::intel_750_array();
        let p = Pipeline::from_trace_ref(old)
            .chunk_size(64)
            .reconstruct(&mut d1, Revision::new())
            .replay(&mut d2, StreamReplay::ClosedLoop);
        let p = if materialise { p.materialize() } else { p };
        p.stats().unwrap()
    };
    assert_eq!(analyse(false), analyse(true));
}

/// Errors cross stage boundaries: a failing terminal sink surfaces its
/// own error from a fused chain (the upstream workers shut down instead
/// of hanging or masking it).
#[test]
fn fused_chain_propagates_sink_errors() {
    struct FailingSink;
    impl RecordSink for FailingSink {
        fn push_chunk(&mut self, _: &[BlockRecord]) -> Result<(), TraceError> {
            Err(TraceError::Io("disk full (test)".to_string()))
        }
        fn finish(&mut self) -> Result<(), TraceError> {
            Ok(())
        }
        fn sink_name(&self) -> &str {
            "failing"
        }
    }

    let old = old_trace();
    let mut d1 = presets::intel_750_array();
    let mut d2 = presets::intel_750_array();
    let err = Pipeline::from_trace_ref(old)
        .chunk_size(32)
        .reconstruct(&mut d1, TraceTracker::new())
        .replay(&mut d2, StreamReplay::ClosedLoop)
        .write_to(&mut FailingSink)
        .unwrap_err();
    assert!(err.to_string().contains("disk full"), "{err}");
}

/// Multi-stream concurrent replay through the Pipeline API equals the
/// sequential per-trace reference: schedules built per input trace, fed
/// to the tagged concurrent core directly.
#[test]
fn pipeline_replay_concurrent_matches_direct_reference() {
    let tenant = |name: &str, n: usize, seed: u64| {
        let entry = catalog::find(name).expect("workload in catalog");
        let session = generate_session(name, &entry.profile, n, seed);
        let mut node = presets::enterprise_hdd_2007();
        session.materialize(&mut node, false).trace
    };
    let traces = vec![
        tenant("MSNFS", 300, 1),
        tenant("webusers", 220, 2),
        tenant("homes", 180, 3),
    ];

    for mode in [
        StreamReplay::OpenLoop { time_scale: 1.0 },
        StreamReplay::ClosedLoop,
    ] {
        // Reference: per-trace schedules through the tt_sim core.
        let schedules: Vec<Schedule> = traces
            .iter()
            .map(|t| match mode {
                StreamReplay::OpenLoop { time_scale } => Schedule::open_loop(t, time_scale),
                StreamReplay::ClosedLoop => Schedule::closed_loop(t),
            })
            .collect();
        let mut ref_dev = presets::intel_750_array();
        let reference = replay_concurrent_tagged(
            &mut ref_dev,
            &schedules,
            "concurrent",
            ReplayConfig::default(),
        );

        // Pipeline, at several chunk sizes.
        for chunk in [1usize, 19, 100_000] {
            let mut dev = presets::intel_750_array();
            let out = Pipeline::from_trace_refs(&traces)
                .chunk_size(chunk)
                .replay_concurrent(&mut dev, mode)
                .replay_outcome()
                .unwrap();
            assert_eq!(out.outcome.trace, reference.outcome.trace, "chunk {chunk}");
            assert_eq!(out.stream_of, reference.stream_of);
            assert_eq!(out.outcome.makespan, reference.outcome.makespan);

            // Per-stream demux partitions the merged trace exactly and
            // preserves each tenant's request stream.
            let mut dev2 = presets::intel_750_array();
            let per_stream = Pipeline::from_trace_refs(&traces)
                .chunk_size(chunk)
                .replay_concurrent(&mut dev2, mode)
                .collect_all()
                .unwrap();
            assert_eq!(per_stream.len(), traces.len());
            let names: Vec<String> = traces.iter().map(|t| t.meta().name.clone()).collect();
            assert_eq!(per_stream, reference.split_traces(&names));
            for (tenant_out, tenant_in) in per_stream.iter().zip(&traces) {
                assert_eq!(tenant_out.len(), tenant_in.len());
            }
        }
    }
}

/// Without a replay stage the multi-stream terminals are exactly N
/// independent single-stream pipelines (collect_all / stats_per_stream),
/// and collect_merged is the stable arrival merge of the inputs.
#[test]
fn multi_pipeline_without_stage_matches_single_stream_runs() {
    let entry = catalog::find("MSNFS").unwrap();
    let t1 = {
        let session = generate_session("MSNFS", &entry.profile, 120, 7);
        let mut node = presets::enterprise_hdd_2007();
        session.materialize(&mut node, false).trace
    };
    let t2 = {
        let session = generate_session("MSNFS", &entry.profile, 90, 8);
        let mut node = presets::enterprise_hdd_2007();
        session.materialize(&mut node, false).trace
    };
    let traces = vec![t1.clone(), t2.clone()];

    let all = Pipeline::from_trace_refs(&traces).collect_all().unwrap();
    assert_eq!(all[0], t1);
    assert_eq!(all[1], t2);

    let stats = Pipeline::from_trace_refs(&traces)
        .stats_per_stream()
        .unwrap();
    assert_eq!(stats[0], TraceStats::compute(&t1));
    assert_eq!(stats[1], TraceStats::compute(&t2));

    let merged = Pipeline::from_trace_refs(&traces).collect_merged().unwrap();
    assert_eq!(merged.len(), t1.len() + t2.len());
    assert!(merged
        .records()
        .windows(2)
        .all(|w| w[0].arrival <= w[1].arrival));
}

/// write_paths demultiplexes a concurrent replay into per-stream files
/// whose contents round-trip to the demuxed traces.
#[test]
fn multi_pipeline_write_paths_round_trips() {
    let entry = catalog::find("webusers").unwrap();
    let make = |seed: u64| {
        let session = generate_session("webusers", &entry.profile, 80, seed);
        let mut node = presets::enterprise_hdd_2007();
        session.materialize(&mut node, false).trace
    };
    let traces = vec![make(1), make(2)];
    let dir = std::env::temp_dir();
    let paths = [dir.join("tt_fused_ws0.ttb"), dir.join("tt_fused_ws1.csv")];

    let mut dev = presets::intel_750_array();
    let stats = Pipeline::from_trace_refs(&traces)
        .replay_concurrent(&mut dev, StreamReplay::ClosedLoop)
        .write_paths(&paths)
        .unwrap();
    assert_eq!(stats.len(), 2);

    let mut dev2 = presets::intel_750_array();
    let expect = Pipeline::from_trace_refs(&traces)
        .replay_concurrent(&mut dev2, StreamReplay::ClosedLoop)
        .collect_all()
        .unwrap();
    for (path, expect) in paths.iter().zip(&expect) {
        let back = Pipeline::from_path(path).collect().unwrap();
        assert_eq!(back.records(), expect.records());
        std::fs::remove_file(path).ok();
    }

    // Path-count mismatch fails before any work.
    let err = Pipeline::from_trace_refs(&traces)
        .write_paths(&[dir.join("tt_fused_one.csv")])
        .unwrap_err();
    assert!(err.to_string().contains("one output per stream"), "{err}");
}
