//! §V-A verification-methodology integration tests: the Fig 10/11 shapes.

use tracetracker::prelude::*;
use tracetracker::workloads::{BurstModel, IdleModel};

/// Low-natural-idle base trace, HDD-collected.
fn base_trace(with_timing: bool, seed: u64) -> Trace {
    let profile = WorkloadProfile {
        idle: IdleModel {
            think_mean_us: 60.0,
            long_idle_prob: 0.0,
            long_mean_us: 1.0,
        },
        burst: BurstModel {
            mean_length: 4.0,
            async_prob: 0.0,
            intra_gap_us: 10.0,
        },
        // Mostly-sequential access keeps per-request Tslat tight (media
        // transfer scale), so injected idles are not absorbed by seek-time
        // variance -- mirroring the small-file server traces the paper
        // injects into.
        seq_start_prob: 0.45,
        seq_run_mean: 8.0,
        ..WorkloadProfile::default()
    };
    let session = generate_session("verify", &profile, 2_000, seed);
    let mut dev = presets::enterprise_hdd_2007();
    session.materialize(&mut dev, with_timing).trace
}

#[test]
fn fig10_shape_len_tp_improves_with_period() {
    let base = base_trace(false, 31);
    let cfg = VerifyConfig::default();
    let periods = [
        SimDuration::from_usecs(100),
        SimDuration::from_msecs(1),
        SimDuration::from_msecs(10),
        SimDuration::from_msecs(100),
    ];
    let errs: Vec<f64> = periods
        .iter()
        .map(|&p| (verify_injection(&base, p, &cfg).len_tp - 1.0).abs())
        .collect();
    // Relative error at 100ms must beat the error at 100us, and the long
    // end must be accurate.
    assert!(errs[3] < errs[0], "Len(TP) errors did not shrink: {errs:?}");
    assert!(errs[3] < 0.1, "Len(TP) at 100ms off by {}", errs[3]);
}

#[test]
fn detection_tp_is_high_for_millisecond_idles() {
    for (with_timing, label) in [(true, "known"), (false, "unknown")] {
        let base = base_trace(with_timing, 32);
        let v = verify_injection(&base, SimDuration::from_msecs(10), &VerifyConfig::default());
        assert!(
            v.detection_tp() > 0.9,
            "Tsdev-{label}: Detection(TP) {}",
            v.detection_tp()
        );
    }
}

#[test]
fn fig11_shape_false_positive_lengths_are_small() {
    // Paper: >98% of Len(FP) under 1ms (known) / 6ms (unknown). Our
    // mechanistic disk gives the linear model a heavier seek-variance tail
    // (any single random access can miss the Tmovd representative by up to
    // max_seek + a rotation ≈ 20ms), so the bound is checked at both the
    // paper's scale and the physical ceiling.
    let base = base_trace(false, 33);
    let v = verify_injection(&base, SimDuration::from_msecs(10), &VerifyConfig::default());
    if v.len_fp_us.is_empty() {
        return; // no false positives at all: trivially fine
    }
    let frac_under = |limit_us: f64| {
        v.len_fp_us.iter().filter(|&&us| us < limit_us).count() as f64 / v.len_fp_us.len() as f64
    };
    assert!(
        frac_under(6_000.0) > 0.6,
        "only {} of Len(FP) under 6ms (n={})",
        frac_under(6_000.0),
        v.len_fp_us.len()
    );
    assert!(
        frac_under(25_000.0) > 0.95,
        "only {} of Len(FP) under the mechanical ceiling",
        frac_under(25_000.0)
    );
}

#[test]
fn tsdev_known_beats_unknown_on_small_idles() {
    // With measured device times the model error disappears, so small
    // injections should be recovered at least as well.
    let known = base_trace(true, 34);
    let unknown = base_trace(false, 34);
    let cfg = VerifyConfig::default();
    let p = SimDuration::from_usecs(500);
    let vk = verify_injection(&known, p, &cfg);
    let vu = verify_injection(&unknown, p, &cfg);
    assert!(
        vk.detection_tp() + 0.05 >= vu.detection_tp(),
        "known {} vs unknown {}",
        vk.detection_tp(),
        vu.detection_tp()
    );
}

#[test]
fn injection_experiment_is_deterministic() {
    let base = base_trace(false, 35);
    let cfg = VerifyConfig::default();
    let a = verify_injection(&base, SimDuration::from_msecs(1), &cfg);
    let b = verify_injection(&base, SimDuration::from_msecs(1), &cfg);
    assert_eq!(a, b);
}
