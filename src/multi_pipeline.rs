//! The multi-stream half of the Pipeline API: N tagged input streams,
//! fan-in, concurrent replay, per-stream terminals.
//!
//! A [`MultiPipeline`] models the paper's **co-evaluation scenarios**:
//! several independent workloads (tenants) sharing one storage device.
//! Construction mirrors the single-stream builder
//! ([`Pipeline::from_paths`](crate::Pipeline::from_paths) /
//! [`from_sources`](crate::Pipeline::from_sources) /
//! [`from_traces`](crate::Pipeline::from_traces)); each input becomes a
//! **stream** with a stable index — its tag on every record it
//! contributes, and its tie-break rank when arrivals collide
//! ([`tt_trace::MultiSource`] defines the merge).
//!
//! The one transform stage is [`MultiPipeline::replay_concurrent`]: the
//! streams are converted to open- or closed-loop operation flows **on the
//! fly** and interleaved through the shared device by the discrete-event
//! core ([`tt_sim::replay_concurrent_sources`]) — per stream, memory
//! holds one chunk of records, not a trace. Terminals either keep the
//! merged arrival-ordered result ([`MultiPipeline::collect_merged`]) or
//! demultiplex it back per stream ([`MultiPipeline::collect_all`],
//! [`MultiPipeline::write_paths`], [`MultiPipeline::stats_per_stream`]).
//!
//! Without a replay stage the terminals degenerate to the obvious
//! fan-out/fan-in: per-stream terminals behave exactly like running each
//! input through its own single-stream [`Pipeline`](crate::Pipeline)
//! (property-tested), and `collect_merged` is the arrival-ordered merge
//! of all inputs. Because the streams are independent there, the
//! per-stream terminals — and the solo-baseline
//! [`MultiPipeline::replay_each`] — **fan across worker cores**
//! ([`tt_par::threads`]), one stream per worker, results in stream order
//! and bit-identical at any worker count.
//!
//! # Ordering contract
//!
//! Streams must be **arrival-ordered** (what every writer in this
//! workspace produces); an unordered stream is an error naming the
//! stream. Merging is stable: duplicate arrivals resolve by stream index,
//! records within one stream never reorder.
//!
//! # Examples
//!
//! ```
//! use tracetracker::prelude::*;
//!
//! // Two tenants' workloads...
//! let tenant = |name: &str, seed: u64| {
//!     let entry = catalog::find(name).unwrap();
//!     let session = generate_session(name, &entry.profile, 150, seed);
//!     let mut node = presets::enterprise_hdd_2007();
//!     session.materialize(&mut node, false).trace
//! };
//! let traces = vec![tenant("MSNFS", 1), tenant("webusers", 2)];
//!
//! // ...consolidated on one shared flash array.
//! let mut array = presets::intel_750_array();
//! let per_tenant = Pipeline::from_trace_refs(&traces)
//!     .replay_concurrent(&mut array, StreamReplay::OpenLoop { time_scale: 1.0 })
//!     .collect_all()
//!     .unwrap();
//! assert_eq!(per_tenant.len(), 2);
//! assert_eq!(per_tenant[0].len(), 150);
//! ```

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use tt_device::BlockDevice;
use tt_par::telemetry::FlightRecorder;
use tt_sim::{
    replay_concurrent_sources, replay_sharded, ConcurrentOutcome, ReplayConfig, ReplayOutcome,
    Schedule, StreamReplay,
};
use tt_trace::sink::SinkStats;
use tt_trace::source::{RecordSource, DEFAULT_CHUNK};
use tt_trace::{format, MultiSource, Trace, TraceError, TraceMeta, TraceStats};

use crate::pipeline::Pipeline;

/// One input stream of a [`MultiPipeline`].
enum MultiInput<'env> {
    /// A trace file, format by extension, streamed at execution time.
    Path(PathBuf),
    /// Any streaming source plus the stream's name.
    Source {
        source: Box<dyn RecordSource + 'env>,
        name: String,
    },
    /// An already-materialised trace.
    Trace(Trace),
    /// A borrowed trace — streamed off its columns without copying.
    TraceRef(&'env Trace),
}

impl MultiInput<'_> {
    /// The stream's name: file stem, source name, or trace name.
    fn name(&self) -> String {
        match self {
            MultiInput::Path(p) => format::stem(p),
            MultiInput::Source { name, .. } => name.clone(),
            MultiInput::Trace(t) => t.meta().name.clone(),
            MultiInput::TraceRef(t) => t.meta().name.clone(),
        }
    }

    /// Opens this input as a named record stream — the one place input
    /// kinds map to sources (and path errors gain their file context).
    fn open_stream(&mut self) -> Result<(String, Box<dyn RecordSource + '_>), TraceError> {
        let name = self.name();
        let source: Box<dyn RecordSource + '_> = match self {
            MultiInput::Path(p) => format::open_source(p.as_path())
                .map_err(|e| crate::pipeline::with_path_context(e, p))?,
            MultiInput::Source { source, .. } => Box::new(&mut **source),
            MultiInput::Trace(t) => Box::new(tt_trace::TraceSource::new(t)),
            MultiInput::TraceRef(t) => Box::new(tt_trace::TraceSource::new(t)),
        };
        Ok((name, source))
    }
}

/// The concurrent-replay stage of a multi-stream pipeline.
struct ConcurrentStage<'env> {
    device: &'env mut dyn BlockDevice,
    mode: StreamReplay,
    config: ReplayConfig,
}

/// A multi-stream trace pipeline: tagged inputs → optional concurrent
/// replay → merged or per-stream terminals. See the module docs.
#[must_use = "a MultiPipeline does nothing until a terminal (collect_all/…) runs it"]
pub struct MultiPipeline<'env> {
    inputs: Vec<MultiInput<'env>>,
    stage: Option<ConcurrentStage<'env>>,
    chunk: usize,
    threads: Option<usize>,
    recorder: Option<Arc<FlightRecorder>>,
}

impl std::fmt::Debug for MultiPipeline<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiPipeline")
            .field("streams", &self.stream_names())
            .field("replay_concurrent", &self.stage.is_some())
            .field("chunk", &self.chunk)
            .field("threads", &self.threads)
            .finish()
    }
}

impl<'env> MultiPipeline<'env> {
    fn new(inputs: Vec<MultiInput<'env>>) -> Self {
        MultiPipeline {
            inputs,
            stage: None,
            chunk: DEFAULT_CHUNK,
            threads: None,
            recorder: None,
        }
    }

    /// See [`Pipeline::from_paths`](crate::Pipeline::from_paths).
    pub fn from_paths<P: AsRef<Path>>(paths: impl IntoIterator<Item = P>) -> Self {
        MultiPipeline::new(
            paths
                .into_iter()
                .map(|p| MultiInput::Path(p.as_ref().to_path_buf()))
                .collect(),
        )
    }

    /// See [`Pipeline::from_sources`](crate::Pipeline::from_sources).
    pub fn from_sources(sources: Vec<(String, Box<dyn RecordSource + 'env>)>) -> Self {
        MultiPipeline::new(
            sources
                .into_iter()
                .map(|(name, source)| MultiInput::Source { source, name })
                .collect(),
        )
    }

    /// See [`Pipeline::from_traces`](crate::Pipeline::from_traces).
    pub fn from_traces(traces: Vec<Trace>) -> Self {
        MultiPipeline::new(traces.into_iter().map(MultiInput::Trace).collect())
    }

    /// See [`Pipeline::from_trace_refs`](crate::Pipeline::from_trace_refs).
    pub fn from_trace_refs(traces: &'env [Trace]) -> Self {
        MultiPipeline::new(traces.iter().map(MultiInput::TraceRef).collect())
    }

    /// Number of input streams.
    #[must_use]
    pub fn stream_count(&self) -> usize {
        self.inputs.len()
    }

    /// The stream names, in tag order (file stem / source name / trace
    /// name).
    #[must_use]
    pub fn stream_names(&self) -> Vec<String> {
        self.inputs.iter().map(MultiInput::name).collect()
    }

    /// Sets the records-per-chunk used by per-stream streaming reads and
    /// writes (default [`DEFAULT_CHUNK`], clamped to at least 1).
    pub fn chunk_size(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Caps the worker threads used by grouping/statistics work in the
    /// terminals **and by the per-stream fan-outs** (stage-less
    /// [`MultiPipeline::collect_all`] / [`MultiPipeline::write_paths`],
    /// and [`MultiPipeline::replay_each`]) — same contract as
    /// [`Pipeline::parallel`](crate::Pipeline::parallel) (process-global,
    /// bit-identical results at any count).
    pub fn parallel(mut self, workers: usize) -> Self {
        self.threads = Some(workers);
        self
    }

    /// Appends the **concurrent replay** stage: every stream is converted
    /// to open- or closed-loop operations on the fly and re-issued against
    /// the one shared `device`, streams interleaving only through the
    /// device's resources ([`tt_sim::replay_concurrent_sources`]) — the
    /// paper's multi-tenant consolidation scenario. Each record of the
    /// merged result keeps its stream tag, so the per-stream terminals
    /// can demultiplex it.
    ///
    /// The device is **not** reset first, matching
    /// [`Pipeline::replay`](crate::Pipeline::replay).
    pub fn replay_concurrent(self, device: &'env mut dyn BlockDevice, mode: StreamReplay) -> Self {
        self.replay_concurrent_with(device, mode, ReplayConfig::default())
    }

    /// Like [`MultiPipeline::replay_concurrent`] with an explicit
    /// [`ReplayConfig`].
    pub fn replay_concurrent_with(
        mut self,
        device: &'env mut dyn BlockDevice,
        mode: StreamReplay,
        config: ReplayConfig,
    ) -> Self {
        self.stage = Some(ConcurrentStage {
            device,
            mode,
            config,
        });
        self
    }

    /// Attaches a **flight recorder** — same contract as
    /// [`Pipeline::flight_recorder`](crate::Pipeline::flight_recorder):
    /// the terminal records its phases (the concurrent replay or the
    /// per-stream fan-out, plus any write) with wall clocks and record
    /// counts, outputs bit-identical with or without it. Multi-stream
    /// terminals have no fused channels, so the per-stage send-/recv-wait
    /// columns stay zero; the log's value here is phase attribution.
    pub fn flight_recorder(mut self, recorder: &Arc<FlightRecorder>) -> Self {
        self.recorder = Some(Arc::clone(recorder));
        self
    }

    fn apply_threads(&self) {
        if let Some(workers) = self.threads {
            tt_par::set_threads(workers);
        }
    }

    /// Opens a recorder run for a terminal (capacity 0: no fused
    /// channels here), returning the handle for its phase stamps.
    fn begin_run(&self) -> Option<Arc<FlightRecorder>> {
        let recorder = self.recorder.clone();
        if let Some(rec) = &recorder {
            rec.begin();
            rec.set_knobs(self.chunk, 0);
        }
        recorder
    }

    /// Runs the concurrent replay stage over the opened streams.
    fn run_concurrent(
        inputs: &mut [MultiInput<'env>],
        stage: ConcurrentStage<'_>,
        chunk: usize,
    ) -> Result<ConcurrentOutcome, TraceError> {
        let mut sources: Vec<(String, Box<dyn RecordSource + '_>)> =
            Vec::with_capacity(inputs.len());
        for input in inputs.iter_mut() {
            sources.push(input.open_stream()?);
        }
        replay_concurrent_sources(
            stage.device,
            sources,
            "concurrent",
            stage.mode,
            chunk,
            stage.config,
        )
    }

    /// Loads one input as a single-stream pipeline (the per-stream
    /// reference semantics every demultiplexed terminal matches).
    fn single(input: MultiInput<'env>, chunk: usize) -> Pipeline<'env> {
        match input {
            MultiInput::Path(p) => Pipeline::from_path(p),
            MultiInput::Source { source, name } => Pipeline::from_source(source, name),
            MultiInput::Trace(t) => Pipeline::from_trace(t),
            MultiInput::TraceRef(t) => Pipeline::from_trace_ref(t),
        }
        .chunk_size(chunk)
    }

    /// Terminal: the raw tagged replay result — the merged
    /// [`ReplayOutcome`](tt_sim::ReplayOutcome) (trace, per-request
    /// service outcomes, makespan) plus the stream tag of every merged
    /// record. This is the full-information terminal the others are
    /// conveniences over; demultiplex with
    /// [`ConcurrentOutcome::split_traces`].
    ///
    /// # Errors
    ///
    /// Propagates input [`TraceError`]s, and errors when no
    /// [`MultiPipeline::replay_concurrent`] stage was added (the other
    /// terminals work without one; this one has nothing to report).
    pub fn replay_outcome(mut self) -> Result<ConcurrentOutcome, TraceError> {
        self.apply_threads();
        let recorder = self.begin_run();
        let Some(stage) = self.stage.take() else {
            return Err(TraceError::format(
                "replay_outcome needs a replay_concurrent stage",
            ));
        };
        let started = Instant::now();
        let out = Self::run_concurrent(&mut self.inputs, stage, self.chunk)?;
        record_phase(
            &recorder,
            0,
            "replay-concurrent",
            started,
            out.outcome.trace.len(),
        );
        finish_run(&recorder);
        Ok(out)
    }

    /// Terminal: one trace per stream. With a replay stage, the merged
    /// concurrent result demultiplexed by tag (each tenant's serviced
    /// requests under contention); without one, each input loaded
    /// independently — exactly what the same input run through a
    /// single-stream [`Pipeline`](crate::Pipeline) yields.
    ///
    /// # Errors
    ///
    /// Propagates input [`TraceError`]s.
    pub fn collect_all(mut self) -> Result<Vec<Trace>, TraceError> {
        self.apply_threads();
        let recorder = self.begin_run();
        let chunk = self.chunk;
        let started = Instant::now();
        let (label, traces) = match self.stage.take() {
            Some(stage) => {
                let names = self.stream_names();
                let out = Self::run_concurrent(&mut self.inputs, stage, chunk)?;
                ("replay-concurrent", out.split_traces(&names))
            }
            // Independent loads: one worker per stream ([`tt_par`]'s
            // thread cap applies; order is preserved either way).
            None => (
                "collect",
                tt_par::par_map_owned(self.inputs, |input| Self::single(input, chunk).collect())
                    .into_iter()
                    .collect::<Result<Vec<Trace>, TraceError>>()?,
            ),
        };
        record_phase(
            &recorder,
            0,
            label,
            started,
            traces.iter().map(Trace::len).sum(),
        );
        finish_run(&recorder);
        Ok(traces)
    }

    /// Terminal: the **merged** arrival-ordered trace across all streams —
    /// the consolidated view a shared device actually served (with a
    /// replay stage), or the plain fan-in merge of the inputs (without
    /// one; duplicate arrivals resolve by stream index).
    ///
    /// # Errors
    ///
    /// Propagates input [`TraceError`]s, and rejects unordered streams
    /// (see the module docs).
    pub fn collect_merged(mut self) -> Result<Trace, TraceError> {
        self.apply_threads();
        let recorder = self.begin_run();
        let chunk = self.chunk;
        let started = Instant::now();
        let (label, trace) = match self.stage.take() {
            Some(stage) => (
                "replay-concurrent",
                Self::run_concurrent(&mut self.inputs, stage, chunk)?
                    .outcome
                    .trace,
            ),
            None => {
                let meta = TraceMeta::named(self.stream_names().join("+")).with_source("multi");
                let mut sources: Vec<(String, Box<dyn RecordSource + '_>)> =
                    Vec::with_capacity(self.inputs.len());
                for input in &mut self.inputs {
                    sources.push(input.open_stream()?);
                }
                let mut multi = MultiSource::new(sources).with_chunk(chunk);
                ("merge", tt_trace::collect_source(&mut multi, meta, chunk)?)
            }
        };
        record_phase(&recorder, 0, label, started, trace.len());
        finish_run(&recorder);
        Ok(trace)
    }

    /// Terminal: streams each stream's result into its own trace file
    /// (`paths[i]` receives stream `i`, format by extension), returning
    /// per-stream push statistics.
    ///
    /// # Errors
    ///
    /// Errors when `paths.len()` differs from the stream count, and
    /// propagates input, format-detection, and I/O [`TraceError`]s.
    pub fn write_paths<P: AsRef<Path>>(
        mut self,
        paths: &[P],
    ) -> Result<Vec<SinkStats>, TraceError> {
        self.apply_threads();
        if paths.len() != self.inputs.len() {
            return Err(TraceError::format(format!(
                "write_paths needs one output per stream: {} streams, {} paths",
                self.inputs.len(),
                paths.len()
            )));
        }
        let recorder = self.begin_run();
        let chunk = self.chunk;
        let stats: Vec<SinkStats> = match self.stage.take() {
            Some(stage) => {
                let names = self.stream_names();
                let started = Instant::now();
                let out = Self::run_concurrent(&mut self.inputs, stage, chunk)?;
                record_phase(
                    &recorder,
                    0,
                    "replay-concurrent",
                    started,
                    out.outcome.trace.len(),
                );
                let jobs: Vec<(Trace, PathBuf)> = out
                    .split_traces(&names)
                    .into_iter()
                    .zip(paths)
                    .map(|(trace, path)| (trace, path.as_ref().to_path_buf()))
                    .collect();
                let started = Instant::now();
                let stats: Vec<SinkStats> = tt_par::par_map_owned(jobs, |(trace, path)| {
                    Pipeline::from_trace(trace)
                        .chunk_size(chunk)
                        .write_path(path)
                })
                .into_iter()
                .collect::<Result<_, _>>()?;
                record_phase(
                    &recorder,
                    1,
                    "write",
                    started,
                    stats.iter().map(|s| s.records).sum(),
                );
                stats
            }
            None => {
                // Independent load-and-write per stream: fan the streams
                // across workers (each writes its own file; order of the
                // returned stats is preserved).
                let jobs: Vec<(MultiInput<'env>, PathBuf)> = self
                    .inputs
                    .into_iter()
                    .zip(paths)
                    .map(|(input, path)| (input, path.as_ref().to_path_buf()))
                    .collect();
                let started = Instant::now();
                let stats: Vec<SinkStats> = tt_par::par_map_owned(jobs, |(input, path)| {
                    Self::single(input, chunk).write_path(path)
                })
                .into_iter()
                .collect::<Result<_, _>>()?;
                record_phase(
                    &recorder,
                    0,
                    "write",
                    started,
                    stats.iter().map(|s| s.records).sum(),
                );
                stats
            }
        };
        finish_run(&recorder);
        Ok(stats)
    }

    /// Terminal: Table-I style summary statistics per stream (computed on
    /// the demultiplexed per-stream traces).
    ///
    /// # Errors
    ///
    /// Propagates input [`TraceError`]s.
    pub fn stats_per_stream(self) -> Result<Vec<TraceStats>, TraceError> {
        Ok(self
            .collect_all()?
            .iter()
            .map(TraceStats::compute)
            .collect())
    }

    /// Terminal: replays every stream **solo** on its own device — the
    /// per-tenant baselines of the paper's consolidation study — fanning
    /// the independent replays across worker cores ([`tt_par::threads`]).
    /// `make_device` builds one fresh device per stream, so the replays
    /// share nothing and the result is bit-identical at any worker count
    /// (each outcome is exactly what a single-stream
    /// [`Pipeline::replay`](crate::Pipeline::replay) of that input on that
    /// device would collect). Outcomes come back in stream order.
    ///
    /// This is the device-shard dual of
    /// [`MultiPipeline::replay_concurrent`]: *concurrent* replay
    /// interleaves the streams through one shared device and is inherently
    /// sequential; *solo* replay sets are embarrassingly parallel across
    /// devices, so they scale with cores.
    ///
    /// # Errors
    ///
    /// Propagates input [`TraceError`]s, and errors when a
    /// [`MultiPipeline::replay_concurrent`] stage was added — the two
    /// replay shapes are mutually exclusive.
    pub fn replay_each<F>(
        self,
        make_device: F,
        mode: StreamReplay,
    ) -> Result<Vec<ReplayOutcome>, TraceError>
    where
        F: Fn() -> Box<dyn BlockDevice> + Sync,
    {
        self.replay_each_with(make_device, mode, ReplayConfig::default())
    }

    /// Like [`MultiPipeline::replay_each`] with an explicit
    /// [`ReplayConfig`].
    ///
    /// # Errors
    ///
    /// See [`MultiPipeline::replay_each`].
    pub fn replay_each_with<F>(
        self,
        make_device: F,
        mode: StreamReplay,
        config: ReplayConfig,
    ) -> Result<Vec<ReplayOutcome>, TraceError>
    where
        F: Fn() -> Box<dyn BlockDevice> + Sync,
    {
        self.apply_threads();
        if self.stage.is_some() {
            return Err(TraceError::format(
                "replay_each replays each stream on its own device; drop the \
                 replay_concurrent stage (or use replay_outcome for the shared-device run)",
            ));
        }
        let recorder = self.begin_run();
        let chunk = self.chunk;
        let started = Instant::now();
        let outcomes: Vec<ReplayOutcome> = tt_par::par_map_owned(self.inputs, |input| {
            let name = input.name();
            let trace = Self::single(input, chunk).collect()?;
            let schedule = match mode {
                StreamReplay::ClosedLoop => Schedule::closed_loop(&trace),
                StreamReplay::OpenLoop { time_scale } => Schedule::open_loop(&trace, time_scale),
            };
            // Inside a fan-out worker this runs the sequential core; at one
            // worker (or from a worker-less caller) it may itself shard at
            // quiescent cuts. Identical output either way.
            let mut device = make_device();
            Ok(replay_sharded(&mut *device, &schedule, &name, config))
        })
        .into_iter()
        .collect::<Result<_, TraceError>>()?;
        record_phase(
            &recorder,
            0,
            "replay-each",
            started,
            outcomes.iter().map(|o| o.trace.len()).sum(),
        );
        finish_run(&recorder);
        Ok(outcomes)
    }
}

/// Records one multi-stream phase into the recorder, when one is attached.
/// Multi-stream runs have no fused channels, so the wait columns stay zero
/// and the value of the log is phase attribution: where the wall clock went.
fn record_phase(
    recorder: &Option<Arc<FlightRecorder>>,
    index: usize,
    label: &str,
    started: Instant,
    records: usize,
) {
    if let Some(rec) = recorder {
        rec.record_stage(index, label, started.elapsed(), records, None, None);
    }
}

/// Stamps the run's end time. Only success paths finish: an errored run
/// leaves the recorder mid-flight and the next [`FlightRecorder::begin`]
/// resets it.
fn finish_run(recorder: &Option<Arc<FlightRecorder>>) {
    if let Some(rec) = recorder {
        rec.finish();
    }
}
