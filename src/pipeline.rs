//! The composable [`Pipeline`] builder: `RecordSource → stages →
//! RecordSink`.
//!
//! Every consumer of the workspace used to hand-wire the same sequence —
//! open a file, pick a format reader, collect, group, infer, reconstruct,
//! pick a format writer, save. [`Pipeline`] makes that sequence the public
//! API: one builder chains an input ([`Pipeline::from_path`],
//! [`Pipeline::from_source`], [`Pipeline::from_trace`]) through transform
//! stages ([`Pipeline::reconstruct`], [`Pipeline::replay`]) into a
//! terminal ([`Pipeline::collect`], [`Pipeline::write_to`],
//! [`Pipeline::write_path`], or the analysis terminals
//! [`Pipeline::group`], [`Pipeline::infer`], [`Pipeline::stats`],
//! [`Pipeline::verify`]).
//!
//! # The fused streaming executor
//!
//! Multi-stage pipelines run **fused** by default: every transform stage
//! is a worker on its own scoped thread, connected to the next stage by a
//! bounded chunk channel ([`tt_par::bounded`], capacity a small multiple
//! of [`Pipeline::chunk_size`]). Records flow stage-to-stage chunk by
//! chunk the moment they are produced, so a `reconstruct → replay` chain
//! holds the input trace plus a handful of **in-flight chunks** — never a
//! materialised intermediate trace. When a stage falls behind, the
//! channel's capacity is the backpressure: the upstream worker blocks
//! instead of buffering. [`Pipeline::materialize`] is the escape hatch
//! back to the classic stage-at-a-time executor (run a stage, collect its
//! trace, feed the next); the two are **bit-identical** on every chain at
//! every chunk size and worker count (property-tested), and
//! [`Pipeline::channel_probe`] exposes the peak channel depth that proves
//! the fused bound held.
//!
//! Two contracts make the fusion exact rather than approximate:
//!
//! * **Ordering** — every stage consumes and emits records in arrival
//!   order (reconstruction's §IV post-processing is an online prefix
//!   transform; replay issues monotonically), so no stage needs to re-sort
//!   what flows through a channel, and stable ties keep their upstream
//!   order.
//! * **Stage appetite** — a replay stage is record-incremental and
//!   consumes its channel directly ([`tt_sim::replay_source_into`]); a
//!   reconstruction stage infers timing from its *whole* input, so a
//!   mid-chain reconstruction collects its own input first — that trace is
//!   the algorithm's requirement, not executor overhead, and chains where
//!   reconstruction comes first (the paper's `reconstruct → replay`
//!   co-evaluation shape) stay fully streaming.
//!
//! The final stage additionally **streams into the terminal**: when a
//! pipeline ends in a sink, the last transform pushes records
//! chunk-by-chunk into it ([`Reconstructor::reconstruct_into`],
//! [`tt_sim::replay_into`]) as the simulated device produces them.
//! Pipelines with no transform stage still materialise the input once
//! (traces are arrival-sorted; sorting needs the whole trace) and then
//! stream it out column-by-column without ever building row caches.
//!
//! # Multi-stream fan-in
//!
//! [`Pipeline::from_paths`] / [`Pipeline::from_sources`] /
//! [`Pipeline::from_traces`] open a [`MultiPipeline`]: N tagged input
//! streams, a [`MultiPipeline::replay_concurrent`] stage that routes them
//! through the shared-device concurrent replay core, and per-stream
//! terminals ([`MultiPipeline::collect_all`],
//! [`MultiPipeline::write_paths`], [`MultiPipeline::stats_per_stream`])
//! that demultiplex the merged result.
//!
//! Stage-less **analysis** of a `.ttb` input goes one step further: the
//! file is memory-mapped ([`tt_trace::MmapTrace`]) and its columns are
//! analysed *in place* — no bulk copy at all for single-block v2 files
//! (the kind every whole-trace write produces), with a transparent
//! copying fallback otherwise and bit-identical results on every path.
//! [`Pipeline::mmap`] is the knob (default on), `tt-cli --no-mmap` the
//! command-line escape hatch.
//!
//! Outputs are identical to calling the underlying free functions by hand:
//! the free functions *are* drains over the same streaming code paths
//! (property-tested).
//!
//! # Examples
//!
//! Revive an old trace on a flash array and collect the result:
//!
//! ```
//! use tracetracker::prelude::*;
//!
//! let entry = catalog::find("MSNFS").unwrap();
//! let session = generate_session("MSNFS", &entry.profile, 300, 7);
//! let mut old_node = presets::enterprise_hdd_2007();
//! let old = session.materialize(&mut old_node, false).trace;
//!
//! let mut new_node = presets::intel_750_array();
//! let revived = Pipeline::from_trace_ref(&old)
//!     .reconstruct(&mut new_node, TraceTracker::new())
//!     .collect()
//!     .unwrap();
//! assert_eq!(revived.len(), old.len());
//! ```

use std::borrow::Cow;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use tt_core::{
    infer, infer_columns, verify_injection, InferenceConfig, InferenceResult, Reconstructor,
};
use tt_device::BlockDevice;
use tt_par::bounded::{self, ChannelProbe};
use tt_par::telemetry::{ChannelStats, FlightRecorder};
use tt_sim::{
    replay_into_sharded, replay_source_into_sharded, ReplayConfig, Schedule, StreamReplay,
};
use tt_trace::sink::{drain_trace, RecordSink, SinkStats};
use tt_trace::source::{collect_source, RecordSource, DEFAULT_CHUNK};
use tt_trace::time::SimDuration;
use tt_trace::tolerant::{ErrorPolicy, TolerantSource};
use tt_trace::{
    format, BlockRecord, GroupedTrace, MmapTrace, Trace, TraceError, TraceMeta, TraceStats,
};

pub use crate::multi_pipeline::MultiPipeline;

/// Where a pipeline's records come from.
enum Input<'env> {
    /// A trace file, format detected by extension at execution time.
    Path(PathBuf),
    /// Any streaming source, with the metadata the collected trace carries.
    Source {
        source: Box<dyn RecordSource + 'env>,
        meta: TraceMeta,
    },
    /// An already-materialised trace.
    Trace(Trace),
    /// A borrowed trace — analysis and single-stage pipelines run without
    /// copying it.
    TraceRef(&'env Trace),
    /// A borrowed, already-validated mapping — the resident-service input:
    /// many concurrent pipelines share one `Arc<MmapTrace>`, and stage-less
    /// analysis terminals read its columns in place.
    Mapped(&'env MmapTrace),
}

/// A record-transform stage.
pub(crate) enum Stage<'env> {
    /// Reconstruction: old trace + target device → new trace.
    Reconstruct {
        device: &'env mut dyn BlockDevice,
        method: Box<dyn Reconstructor + 'env>,
    },
    /// Replay: re-issue the request stream against a device.
    Replay {
        device: &'env mut dyn BlockDevice,
        mode: StreamReplay,
        config: ReplayConfig,
    },
}

impl Stage<'_> {
    /// The stage's label in flight logs and `Debug` output.
    pub(crate) fn label(&self) -> &'static str {
        match self {
            Stage::Reconstruct { .. } => "reconstruct",
            Stage::Replay { .. } => "replay",
        }
    }

    /// A snapshot clone of the stage's device, for calibration runs that
    /// must not perturb the real device ([`crate::tune`]).
    pub(crate) fn snapshot_device(&self) -> Option<Box<dyn BlockDevice>> {
        match self {
            Stage::Reconstruct { device, .. } => device.snapshot(),
            Stage::Replay { device, .. } => device.snapshot(),
        }
    }

    /// Runs the stage materialised against a *caller-provided* device —
    /// the calibration shape: [`run_stage`] on a snapshot clone, leaving
    /// the stage (and its real device) untouched.
    pub(crate) fn run_calibration(
        &self,
        trace: &Trace,
        device: &mut dyn BlockDevice,
        chunk: usize,
    ) -> Result<Trace, TraceError> {
        match self {
            Stage::Reconstruct { method, .. } => Ok(method.reconstruct(trace, device)),
            Stage::Replay { mode, config, .. } => {
                let mut sink = tt_trace::TraceSink::new(
                    TraceMeta::named(trace.meta().name.clone()).with_source("tt-sim collector"),
                );
                // The sink is in-memory, but a faulty device with an abort
                // policy can still fail the replay — propagate it.
                replay_stage_into(device, trace, *mode, *config, &mut sink, chunk)?;
                Ok(sink.into_trace())
            }
        }
    }
}

/// A composable trace pipeline: input → transform stages → terminal.
///
/// See the crate-level docs for the overall shape. The builder is
/// consumed by its terminal; configuration methods
/// ([`Pipeline::chunk_size`], [`Pipeline::parallel`]) apply to the whole
/// run.
#[must_use = "a Pipeline does nothing until a terminal (collect/write_to/…) runs it"]
pub struct Pipeline<'env> {
    input: Input<'env>,
    stages: Vec<Stage<'env>>,
    chunk: usize,
    /// `true` once [`Pipeline::chunk_size`] was called — [`Pipeline::auto`]
    /// only tunes knobs the caller left untouched.
    chunk_set: bool,
    threads: Option<usize>,
    use_mmap: bool,
    fused: bool,
    /// Fused stage-boundary channel capacity, in chunks
    /// (default [`FUSED_CHANNEL_CHUNKS`]).
    capacity: Option<usize>,
    auto: bool,
    probe: Option<Arc<ChannelProbe>>,
    recorder: Option<Arc<FlightRecorder>>,
    on_error: ErrorPolicy,
}

impl std::fmt::Debug for Pipeline<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let input = match &self.input {
            Input::Path(p) => format!("path {}", p.display()),
            Input::Source { meta, .. } => format!("source {:?}", meta.name),
            Input::Trace(ref t) => format!("trace {:?} ({} records)", t.meta().name, t.len()),
            Input::TraceRef(t) => format!("trace {:?} ({} records)", t.meta().name, t.len()),
            Input::Mapped(m) => format!("mapped {:?} ({} records)", m.meta().name, m.len()),
        };
        let stages: Vec<&str> = self.stages.iter().map(Stage::label).collect();
        f.debug_struct("Pipeline")
            .field("input", &input)
            .field("stages", &stages)
            .field("chunk", &self.chunk)
            .field("threads", &self.threads)
            .field("mmap", &self.use_mmap)
            .field("fused", &self.fused)
            .field("auto", &self.auto)
            .finish()
    }
}

impl<'env> Pipeline<'env> {
    fn new(input: Input<'env>) -> Self {
        Pipeline {
            input,
            stages: Vec::new(),
            chunk: DEFAULT_CHUNK,
            chunk_set: false,
            threads: None,
            use_mmap: true,
            fused: true,
            capacity: None,
            auto: false,
            probe: None,
            recorder: None,
            on_error: ErrorPolicy::Abort,
        }
    }

    /// Starts a pipeline from a trace file; the format is detected from
    /// the extension (`.csv`/`.txt`/`.trace` for CSV, `.blk` for blkparse
    /// text, `.ttb` for the binary columnar format), and the file is read
    /// at execution time — text formats parse chunk-by-chunk, TTB is
    /// bulk-read straight into the columnar store.
    pub fn from_path(path: impl AsRef<Path>) -> Self {
        Pipeline::new(Input::Path(path.as_ref().to_path_buf()))
    }

    /// Starts a pipeline from any [`RecordSource`]; `name` becomes the
    /// collected trace's name.
    pub fn from_source(source: impl RecordSource + 'env, name: impl Into<String>) -> Self {
        let meta = TraceMeta::named(name).with_source(source.source_name());
        Pipeline::new(Input::Source {
            source: Box::new(source),
            meta,
        })
    }

    /// Starts a pipeline from an already-materialised trace.
    pub fn from_trace(trace: Trace) -> Self {
        Pipeline::new(Input::Trace(trace))
    }

    /// Starts a pipeline from a *borrowed* trace: analysis terminals and
    /// single-stage pipelines run without copying it (only a no-stage
    /// [`Pipeline::collect`] clones, since it must return an owned trace).
    /// Prefer this over `from_trace(trace.clone())` when the caller keeps
    /// using the trace — for the multi-GB traces this API targets, the
    /// clone doubles peak memory.
    pub fn from_trace_ref(trace: &'env Trace) -> Self {
        Pipeline::new(Input::TraceRef(trace))
    }

    /// Starts a pipeline from a *borrowed, already-open* mapping — the
    /// resident-service shape: a long-running process (`tt-serve`) opens
    /// each `.ttb` once ([`MmapTrace::open`], typically cached in a
    /// [`tt_trace::MmapRegistry`]) and then builds a fresh per-request
    /// pipeline over the shared mapping for every query.
    ///
    /// Stage-less **analysis terminals** ([`Pipeline::group`],
    /// [`Pipeline::infer`], [`Pipeline::stats`]) read the mapped columns
    /// in place — no copy, no re-validation, and any number of concurrent
    /// pipelines may share one mapping (the [`tt_trace::Columns`] borrow
    /// model guarantees aliasing safety; results are bit-identical to a
    /// single reader, property-tested). Transform stages and
    /// [`Pipeline::verify`] need an owned, mutable trace and copy the
    /// mapped columns out first ([`MmapTrace::to_trace`]) — results are
    /// bit-identical on every path, exactly as with [`Pipeline::mmap`].
    pub fn from_mapped(mapped: &'env MmapTrace) -> Self {
        Pipeline::new(Input::Mapped(mapped))
    }

    /// Sets the records-per-chunk used by streaming reads and writes
    /// (default [`DEFAULT_CHUNK`], clamped to at least 1).
    pub fn chunk_size(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self.chunk_set = true;
        self
    }

    /// Caps the worker threads used by grouping/inference **and by replay
    /// stages** (`0` = all cores, `1` = sequential). Parallel and
    /// sequential runs are bit-identical — the knob trades cores for
    /// wall-clock only.
    ///
    /// With more than one worker, an open-loop replay stage shards: the
    /// schedule is split at quiescent cuts and the partitions replay
    /// concurrently on per-partition device snapshots
    /// ([`tt_sim::replay_sharded`]), producing the exact records, stats
    /// and makespan of the sequential replay. Schedules or devices that
    /// cannot shard (closed-loop, saturated arrivals, models without the
    /// snapshot contract) run sequentially — same output either way, so
    /// the knob never changes results, including inside fused chains.
    ///
    /// The cap is applied via [`tt_par::set_threads`] when the pipeline
    /// executes and, like the CLI's `--parallel` flag, it is
    /// **process-global**: it stays in effect for later work until set
    /// again.
    pub fn parallel(mut self, workers: usize) -> Self {
        self.threads = Some(workers);
        self
    }

    /// Enables or disables the **memory-mapped** `.ttb` load path
    /// (default: enabled).
    ///
    /// When a stage-less pipeline starts from a `.ttb` path and ends in an
    /// analysis terminal ([`Pipeline::group`], [`Pipeline::infer`],
    /// [`Pipeline::stats`], [`Pipeline::verify`]), the file is mapped
    /// ([`MmapTrace`]) instead of bulk-read: validation runs once and the
    /// columns are analysed *in place*, skipping the copy into heap `Vec`s
    /// entirely for v2 single-block files (see
    /// [`tt_trace::format::ttb`](tt_trace::format::ttb) for the exact
    /// zero-copy conditions and the transparent copying fallback).
    /// Transform stages need an owned, mutable trace, so staged pipelines
    /// — and [`Pipeline::verify`], which injects idle into a copy — fall
    /// back to ownership; results are bit-identical on every path
    /// (property-tested).
    pub fn mmap(mut self, enabled: bool) -> Self {
        self.use_mmap = enabled;
        self
    }

    /// Switches a multi-stage pipeline back to the classic
    /// **stage-at-a-time** executor: each stage runs to completion and
    /// materialises its whole output trace before the next stage starts.
    ///
    /// Chains run **fused** by default — stages pipelined on worker
    /// threads, connected by bounded chunk channels, holding in-flight
    /// chunks instead of intermediate traces (see the module docs for the
    /// executor contract). Results are bit-identical either way
    /// (property-tested); materialising trades the peak-memory and
    /// pipelining win for a simpler single-threaded execution — useful
    /// for debugging and as the reference the fused executor is tested
    /// against.
    pub fn materialize(mut self) -> Self {
        self.fused = false;
        self
    }

    /// Attaches a traffic probe to every fused stage-boundary channel.
    ///
    /// After the terminal runs, [`ChannelProbe::peak_depth`] is the peak
    /// number of in-flight chunks buffered at any stage boundary (≤ the
    /// channel capacity by construction) and [`ChannelProbe::chunks`] the
    /// total chunks that flowed — the observable witness that a fused
    /// chain never materialised its intermediate stream. Single-stage and
    /// materialised runs never touch the probe.
    pub fn channel_probe(mut self, probe: &Arc<ChannelProbe>) -> Self {
        self.probe = Some(Arc::clone(probe));
        self
    }

    /// Sets the fused stage-boundary channel capacity, in chunks (default
    /// [`FUSED_CHANNEL_CHUNKS`], clamped to at least 1). A larger bound
    /// absorbs burstier stage imbalance at the cost of more in-flight
    /// memory; like every knob it never changes results — only peak memory
    /// and wall clock.
    pub fn channel_capacity(mut self, chunks: usize) -> Self {
        self.capacity = Some(chunks.max(1));
        self
    }

    /// Attaches a **flight recorder**: when the terminal runs, the
    /// recorder collects per-stage busy / blocked-on-send /
    /// blocked-on-recv time (measured at the bounded-channel boundaries
    /// with a monotonic clock), record and chunk counts, and queue
    /// high-water marks. Read the result with
    /// [`FlightRecorder::flight_log`] after the terminal returns.
    ///
    /// Recording only observes — outputs are **bit-identical** with the
    /// recorder on or off (property-tested), and the bench gates its
    /// overhead below 5%. See [`tt_par::telemetry`] for the exact
    /// recording contract.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use tracetracker::prelude::*;
    /// use tracetracker::FlightRecorder;
    ///
    /// let entry = catalog::find("MSNFS").unwrap();
    /// let session = generate_session("MSNFS", &entry.profile, 300, 7);
    /// let mut node = presets::enterprise_hdd_2007();
    /// let old = session.materialize(&mut node, false).trace;
    ///
    /// let mut ssd = presets::intel_750_array();
    /// let mut fast = presets::intel_750_array();
    /// let recorder = Arc::new(FlightRecorder::new());
    /// Pipeline::from_trace_ref(&old)
    ///     .reconstruct(&mut ssd, TraceTracker::new())
    ///     .replay(&mut fast, StreamReplay::ClosedLoop)
    ///     .flight_recorder(&recorder)
    ///     .collect()
    ///     .unwrap();
    /// let log = recorder.flight_log();
    /// assert_eq!(log.stages.len(), 3); // load + reconstruct + replay
    /// for stage in &log.stages {
    ///     assert!(stage.busy + stage.send_wait + stage.recv_wait <= stage.wall);
    /// }
    /// ```
    pub fn flight_recorder(mut self, recorder: &Arc<FlightRecorder>) -> Self {
        self.recorder = Some(Arc::clone(recorder));
        self
    }

    /// Sets the pipeline's **error budget**: how malformed input records
    /// are handled when a text-format input (CSV / blkparse) is decoded.
    ///
    /// The default, [`ErrorPolicy::Abort`], keeps today's behaviour — any
    /// decode error fails the run. [`ErrorPolicy::Skip`] (`skip:N` on the
    /// CLI) tolerates up to `N` malformed records, logging each with its
    /// 1-based line number into the policy's [`QuarantineLog`]
    /// (keep a clone of the policy to read the report);
    /// [`ErrorPolicy::Quarantine`] is an unlimited budget. Only
    /// *recoverable* per-record parse errors are subject to the policy —
    /// I/O errors, structural format errors, and invariant violations
    /// always abort. Binary TTB inputs and in-memory inputs have no
    /// per-record decode step, so the knob is a no-op for them.
    ///
    /// The surviving records are exactly the clean subset of the input:
    /// a tolerant run over a dirty file is bit-identical to an abort run
    /// over the same file with the bad lines deleted (property-tested).
    ///
    /// [`QuarantineLog`]: tt_trace::tolerant::QuarantineLog
    pub fn on_error(mut self, policy: ErrorPolicy) -> Self {
        self.on_error = policy;
        self
    }

    /// Lets the pipeline **pick its own knobs**: worker count, chunk size
    /// and fused channel capacity. The worker count goes to all cores
    /// (every knob is output-invariant, so there is no accuracy reason to
    /// hold back); the chunk size scales with the input; and for chains of
    /// two or more stages a short **calibration prefix** of the input runs
    /// against snapshot clones of the stage devices, a private
    /// [`FlightRecorder`] times each stage, and the observed stall ratios
    /// pick the channel capacity (balanced stages get deeper buffering to
    /// absorb bursts; a persistent bottleneck keeps the default — extra
    /// depth would only add memory in front of it). See [`crate::tune`]
    /// for the exact policy.
    ///
    /// Knobs the caller already set explicitly ([`Pipeline::chunk_size`],
    /// [`Pipeline::parallel`], [`Pipeline::channel_capacity`]) are left
    /// alone. Calibration uses device snapshots, so the real devices see
    /// the workload exactly once — outputs stay **bit-identical** to any
    /// fixed setting (`tt-cli --parallel auto` is byte-compared against
    /// `--parallel 1` in CI).
    pub fn auto(mut self) -> Self {
        self.auto = true;
        self
    }

    /// Starts a **multi-stream** pipeline from several trace files — the
    /// fan-in front end: per-stream tags, arrival-ordered merge, and the
    /// [`MultiPipeline::replay_concurrent`] stage. See [`MultiPipeline`].
    pub fn from_paths<P: AsRef<Path>>(paths: impl IntoIterator<Item = P>) -> MultiPipeline<'env> {
        MultiPipeline::from_paths(paths)
    }

    /// Starts a multi-stream pipeline from `(name, source)` pairs; stream
    /// order fixes the tag indices (and tie-break rank on duplicate
    /// arrivals). See [`MultiPipeline`].
    pub fn from_sources(
        sources: Vec<(String, Box<dyn RecordSource + 'env>)>,
    ) -> MultiPipeline<'env> {
        MultiPipeline::from_sources(sources)
    }

    /// Starts a multi-stream pipeline from already-materialised traces,
    /// one stream per trace. See [`MultiPipeline`].
    pub fn from_traces(traces: Vec<Trace>) -> MultiPipeline<'env> {
        MultiPipeline::from_traces(traces)
    }

    /// Starts a multi-stream pipeline from *borrowed* traces — no copies;
    /// the streams read straight off the columns. See [`MultiPipeline`].
    pub fn from_trace_refs(traces: &'env [Trace]) -> MultiPipeline<'env> {
        MultiPipeline::from_trace_refs(traces)
    }

    /// The mapped view of the input, when this pipeline qualifies for the
    /// mmap fast path: `.ttb` path input, no transform stages, knob
    /// enabled. Any open/validation *error* falls back to `None` — the
    /// ordinary load path re-raises it with the file-path context, keeping
    /// error behaviour identical whether the knob is on or off.
    fn try_mmap(&self) -> Option<MmapTrace> {
        if !self.use_mmap || !self.stages.is_empty() {
            return None;
        }
        let Input::Path(path) = &self.input else {
            return None;
        };
        if format::TraceFormat::from_path(path) != Ok(format::TraceFormat::Ttb) {
            return None;
        }
        if let Some(workers) = self.threads {
            tt_par::set_threads(workers);
        }
        MmapTrace::open(path).ok()
    }

    /// The shared mapped columns, when this pipeline is a stage-less run
    /// over a [`Pipeline::from_mapped`] input — the borrow outlives the
    /// builder (it comes from the caller's mapping, lifetime `'env`), so
    /// analysis terminals consume the view after the builder is gone.
    fn shared_columns(&self) -> Option<tt_trace::Columns<'env>> {
        if !self.stages.is_empty() {
            return None;
        }
        let mapped: &'env MmapTrace = match &self.input {
            Input::Mapped(mapped) => mapped,
            _ => return None,
        };
        if let Some(workers) = self.threads {
            tt_par::set_threads(workers);
        }
        Some(mapped.columns())
    }

    /// Appends a reconstruction stage: the current trace is treated as the
    /// *old* workload and re-targeted to `device` with `method`
    /// ([`TraceTracker`](tt_core::TraceTracker) and friends). When this is
    /// the final stage before a sink terminal, records stream into the
    /// sink as the simulated device produces them.
    pub fn reconstruct(
        mut self,
        device: &'env mut dyn BlockDevice,
        method: impl Reconstructor + 'env,
    ) -> Self {
        self.stages.push(Stage::Reconstruct {
            device,
            method: Box::new(method),
        });
        self
    }

    /// Appends a replay stage: the current request stream is re-issued
    /// against `device` open- or closed-loop ([`StreamReplay`]), collecting
    /// the serviced trace blktrace-style. The device is **not** reset
    /// first — a warm cache/head position can be intentional, matching
    /// [`tt_sim::replay`].
    pub fn replay(mut self, device: &'env mut dyn BlockDevice, mode: StreamReplay) -> Self {
        self.stages.push(Stage::Replay {
            device,
            mode,
            config: ReplayConfig::default(),
        });
        self
    }

    /// Like [`Pipeline::replay`] with an explicit [`ReplayConfig`] (e.g. to
    /// collect a `Tsdev`-unknown trace without device-side timing).
    pub fn replay_with(
        mut self,
        device: &'env mut dyn BlockDevice,
        mode: StreamReplay,
        config: ReplayConfig,
    ) -> Self {
        self.stages.push(Stage::Replay {
            device,
            mode,
            config,
        });
        self
    }

    /// Applies the worker-count knob, loads the input trace (borrowed
    /// when the input was [`Pipeline::from_trace_ref`]), runs the
    /// autotuner when [`Pipeline::auto`] asked for it, and returns the
    /// trace with the stages and resolved execution knobs.
    fn load_input(self) -> Result<(Cow<'env, Trace>, Vec<Stage<'env>>, Exec), TraceError> {
        if let Some(workers) = self.threads {
            tt_par::set_threads(workers);
        } else if self.auto {
            // Every knob is output-invariant, so auto always takes all
            // cores — there is nothing to trade but wall clock.
            tt_par::set_threads(0);
        }
        let load_started = Instant::now();
        let policy = self.on_error;
        let trace: Cow<'env, Trace> = match self.input {
            Input::Path(path) => {
                let tolerant_text = !policy.is_abort()
                    && format::TraceFormat::from_path(&path)
                        .is_ok_and(|f| f != format::TraceFormat::Ttb);
                if tolerant_text {
                    // Error-budget decode: stream the text format through a
                    // TolerantSource so malformed lines are skipped (and
                    // quarantined) instead of failing the run. TTB is
                    // binary-columnar — no per-record decode to tolerate —
                    // so it stays on the bulk path below.
                    let meta = format::meta_for_path(&path)?;
                    let source =
                        format::open_source(&path).map_err(|e| with_path_context(e, &path))?;
                    let mut tolerant = TolerantSource::new(source, policy);
                    Cow::Owned(
                        collect_source(&mut tolerant, meta, self.chunk)
                            .map_err(|e| with_path_context(e, &path))?,
                    )
                } else {
                    // `load_trace` takes the fastest per-format route: TTB
                    // is bulk-read straight into the columns, text formats
                    // stream through their RecordSource.
                    Cow::Owned(
                        format::load_trace(&path, self.chunk)
                            .map_err(|e| with_path_context(e, &path))?,
                    )
                }
            }
            Input::Source { mut source, meta } => {
                if policy.is_abort() {
                    Cow::Owned(collect_source(&mut *source, meta, self.chunk)?)
                } else {
                    let mut tolerant = TolerantSource::new(source, policy);
                    Cow::Owned(collect_source(&mut tolerant, meta, self.chunk)?)
                }
            }
            Input::Trace(trace) => Cow::Owned(trace),
            Input::TraceRef(trace) => Cow::Borrowed(trace),
            // Stages and owning terminals copy the mapped columns out once
            // (stage-less analysis terminals never reach here — they read
            // the mapping in place via `shared_columns`).
            Input::Mapped(mapped) => Cow::Owned(mapped.to_trace()),
        };
        if let Some(rec) = &self.recorder {
            rec.record_stage(0, "load", load_started.elapsed(), trace.len(), None, None);
        }
        let mut chunk = self.chunk;
        let mut capacity = self.capacity.unwrap_or(FUSED_CHANNEL_CHUNKS);
        if self.auto {
            let plan = crate::tune::plan(&trace, &self.stages, self.chunk);
            if !self.chunk_set {
                chunk = plan.chunk;
            }
            if self.capacity.is_none() {
                capacity = plan.capacity;
            }
        }
        if let Some(rec) = &self.recorder {
            rec.set_knobs(chunk, capacity);
        }
        Ok((
            trace,
            self.stages,
            Exec {
                chunk,
                fused: self.fused,
                capacity,
                probe: self.probe,
                recorder: self.recorder,
            },
        ))
    }

    /// Runs the whole pipeline into memory, keeping a borrowed input
    /// borrowed when no stage touched it — the zero-copy path behind the
    /// analysis terminals. Staged pipelines run through [`execute`] into
    /// an in-memory sink whose metadata matches what the stages would
    /// have produced themselves.
    fn collect_ref(self) -> Result<Cow<'env, Trace>, TraceError> {
        let (trace, stages, exec) = self.load_input()?;
        let Some(last) = stages.last() else {
            return Ok(trace);
        };
        let mut sink = tt_trace::TraceSink::new(final_meta(&trace.meta().name, last));
        execute(trace, stages, &mut sink, &exec)?;
        Ok(Cow::Owned(sink.into_trace()))
    }

    /// Runs the pipeline, materialising the final trace in memory.
    ///
    /// # Errors
    ///
    /// Propagates input [`TraceError`]s (open, parse, format detection).
    pub fn collect(self) -> Result<Trace, TraceError> {
        let recorder = self.recorder.clone();
        if let Some(rec) = &recorder {
            rec.begin();
        }
        let collected = self.collect_ref()?.into_owned();
        if let Some(rec) = &recorder {
            rec.finish();
        }
        Ok(collected)
    }

    /// Runs the pipeline, streaming the final records into `sink` chunk by
    /// chunk. With the fused executor (the default) a multi-stage chain
    /// holds the input trace plus in-flight chunks; the one exception is a
    /// reconstruction stage fed by an earlier stage, which must collect
    /// its own input first (inference reads the whole trace — see the
    /// module docs). Returns push statistics (record count, first/last
    /// arrival).
    ///
    /// # Errors
    ///
    /// Propagates input and sink [`TraceError`]s.
    pub fn write_to(self, sink: &mut dyn RecordSink) -> Result<SinkStats, TraceError> {
        let recorder = self.recorder.clone();
        if let Some(rec) = &recorder {
            rec.begin();
        }
        let (trace, stages, exec) = self.load_input()?;
        let stats = execute(trace, stages, sink, &exec)?;
        if let Some(rec) = &recorder {
            rec.finish();
        }
        Ok(stats)
    }

    /// Runs the pipeline, streaming the final records into the trace file
    /// at `path` (format by extension) — [`Pipeline::write_to`] with the
    /// sink opened for you.
    ///
    /// # Errors
    ///
    /// Propagates input, format-detection, and I/O [`TraceError`]s.
    pub fn write_path(self, path: impl AsRef<Path>) -> Result<SinkStats, TraceError> {
        // Validate the output format before any work: a typo'd extension
        // must fail in microseconds, not after parsing and reconstructing
        // a multi-GB input.
        let out_format = format::TraceFormat::from_path(path.as_ref())?;
        let recorder = self.recorder.clone();
        if let Some(rec) = &recorder {
            rec.begin();
        }
        let (trace, stages, exec) = self.load_input()?;
        if stages.is_empty() && out_format == format::TraceFormat::Ttb {
            // Columnar fast path: a stage-less pipeline ending in TTB moves
            // the store's columns out in bulk — no row is ever assembled.
            let stats = SinkStats {
                records: trace.len(),
                first: trace.start(),
                last: trace.end(),
            };
            let write_started = Instant::now();
            format::save_trace(&trace, path, exec.chunk)?;
            if let Some(rec) = &recorder {
                rec.record_stage(
                    1,
                    "write",
                    write_started.elapsed(),
                    stats.records,
                    None,
                    None,
                );
                rec.finish();
            }
            return Ok(stats);
        }
        // Reconstruction and replay both name their output after the input
        // trace, so the sink's name (the CSV header) is known up front.
        let mut sink = format::create_sink(path, &trace.meta().name)?;
        let stats = execute(trace, stages, &mut *sink, &exec)?;
        if let Some(rec) = &recorder {
            rec.finish();
        }
        Ok(stats)
    }

    /// Terminal: partitions the final trace by (sequentiality × op × size)
    /// — the paper's §III grouping.
    ///
    /// # Errors
    ///
    /// Propagates input [`TraceError`]s.
    pub fn group(self) -> Result<GroupedTrace, TraceError> {
        let recorder = self.begin_analysis();
        if let Some(cols) = self.shared_columns() {
            let started = Instant::now();
            let out = GroupedTrace::build_columns(cols);
            record_terminal(&recorder, "group", started, cols.len());
            return Ok(out);
        }
        let mmap_started = Instant::now();
        if let Some(mapped) = self.try_mmap() {
            record_load(&recorder, mmap_started, mapped.len());
            let started = Instant::now();
            let out = GroupedTrace::build_columns(mapped.columns());
            record_terminal(&recorder, "group", started, mapped.len());
            return Ok(out);
        }
        let trace = self.collect_ref()?;
        let started = Instant::now();
        let out = GroupedTrace::build(&trace);
        record_terminal(&recorder, "group", started, trace.len());
        Ok(out)
    }

    /// Terminal: runs the paper's timing inference on the final trace.
    ///
    /// # Errors
    ///
    /// Propagates input [`TraceError`]s.
    pub fn infer(self, config: &InferenceConfig) -> Result<InferenceResult, TraceError> {
        let recorder = self.begin_analysis();
        if let Some(cols) = self.shared_columns() {
            let started = Instant::now();
            let out = infer_columns(cols, config);
            record_terminal(&recorder, "infer", started, cols.len());
            return Ok(out);
        }
        let mmap_started = Instant::now();
        if let Some(mapped) = self.try_mmap() {
            record_load(&recorder, mmap_started, mapped.len());
            let started = Instant::now();
            let out = infer_columns(mapped.columns(), config);
            record_terminal(&recorder, "infer", started, mapped.len());
            return Ok(out);
        }
        let trace = self.collect_ref()?;
        let started = Instant::now();
        let out = infer(&trace, config);
        record_terminal(&recorder, "infer", started, trace.len());
        Ok(out)
    }

    /// Terminal: Table-I style summary statistics of the final trace.
    ///
    /// # Errors
    ///
    /// Propagates input [`TraceError`]s.
    pub fn stats(self) -> Result<TraceStats, TraceError> {
        let recorder = self.begin_analysis();
        if let Some(cols) = self.shared_columns() {
            let started = Instant::now();
            let out = TraceStats::compute_columns(cols);
            record_terminal(&recorder, "stats", started, cols.len());
            return Ok(out);
        }
        let mmap_started = Instant::now();
        if let Some(mapped) = self.try_mmap() {
            record_load(&recorder, mmap_started, mapped.len());
            let started = Instant::now();
            let out = TraceStats::compute_columns(mapped.columns());
            record_terminal(&recorder, "stats", started, mapped.len());
            return Ok(out);
        }
        let trace = self.collect_ref()?;
        let started = Instant::now();
        let out = TraceStats::compute(&trace);
        record_terminal(&recorder, "stats", started, trace.len());
        Ok(out)
    }

    /// Terminal: the paper's §V-A injected-idle verification on the final
    /// trace. Injection mutates arrivals, so even the mapped path works on
    /// an owned copy of the mapped columns.
    ///
    /// # Errors
    ///
    /// Propagates input [`TraceError`]s.
    pub fn verify(
        self,
        period: SimDuration,
        config: &tt_core::VerifyConfig,
    ) -> Result<tt_core::InjectionVerification, TraceError> {
        let recorder = self.begin_analysis();
        let mmap_started = Instant::now();
        if let Some(mapped) = self.try_mmap() {
            record_load(&recorder, mmap_started, mapped.len());
            let started = Instant::now();
            let out = verify_injection(&mapped.to_trace(), period, config);
            record_terminal(&recorder, "verify", started, mapped.len());
            return Ok(out);
        }
        let trace = self.collect_ref()?;
        let started = Instant::now();
        let out = verify_injection(&trace, period, config);
        record_terminal(&recorder, "verify", started, trace.len());
        Ok(out)
    }

    /// Opens a recorder run for an analysis terminal, stamping the knobs
    /// as currently configured (the `collect_ref` fallback re-stamps them
    /// after autotuning). Returns the recorder handle for the terminal's
    /// own stage.
    fn begin_analysis(&self) -> Option<Arc<FlightRecorder>> {
        let recorder = self.recorder.clone();
        if let Some(rec) = &recorder {
            rec.begin();
            rec.set_knobs(self.chunk, self.capacity.unwrap_or(FUSED_CHANNEL_CHUNKS));
        }
        recorder
    }
}

/// Records a fast-path mmap open as the run's "load" stage.
fn record_load(recorder: &Option<Arc<FlightRecorder>>, started: Instant, records: usize) {
    if let Some(rec) = recorder {
        rec.record_stage(0, "load", started.elapsed(), records, None, None);
    }
}

/// Records an analysis terminal's own stage and closes the run —
/// `usize::MAX` orders it after every load/transform stage.
fn record_terminal(
    recorder: &Option<Arc<FlightRecorder>>,
    label: &str,
    started: Instant,
    records: usize,
) {
    if let Some(rec) = recorder {
        rec.record_stage(usize::MAX, label, started.elapsed(), records, None, None);
        rec.finish();
    }
}

/// Prefixes errors raised while reading a file with the file they came
/// from — parser errors only know line numbers and mid-read I/O errors
/// nothing at all, which is useless across multiple inputs. Errors that
/// already name the path (file-open failures do) are left alone.
pub(crate) fn with_path_context(err: TraceError, path: &Path) -> TraceError {
    let p = path.display().to_string();
    let prefix = |message: String| {
        if message.contains(&p) {
            message
        } else {
            format!("{p}: {message}")
        }
    };
    match err {
        TraceError::Parse { message, line } => TraceError::Parse {
            message: prefix(message),
            line,
        },
        TraceError::InvalidRecord { index, message } => TraceError::InvalidRecord {
            index,
            message: prefix(message),
        },
        TraceError::Io(message) => TraceError::Io(prefix(message)),
        other => other,
    }
}

/// Streams a replay of `trace` under `mode` into `sink` — the one replay
/// helper behind both the materialised and the sink-terminated stage, so
/// the closed/open-loop semantics stay defined in exactly one place
/// ([`Schedule::closed_loop_ops`] / [`Schedule::open_loop_ops`]).
fn replay_stage_into(
    device: &mut dyn BlockDevice,
    trace: &Trace,
    mode: StreamReplay,
    config: ReplayConfig,
    sink: &mut dyn RecordSink,
    chunk: usize,
) -> Result<SinkStats, TraceError> {
    // `replay_into_sharded` fans the simulation across worker cores at
    // quiescent cuts when the schedule and device allow it, falling back
    // to the streaming sequential replay otherwise — output identical
    // either way (see `tt_sim::replay_sharded`).
    let out = match mode {
        StreamReplay::ClosedLoop => replay_into_sharded(
            device,
            Schedule::closed_loop_ops(trace),
            config,
            sink,
            chunk,
        )?,
        StreamReplay::OpenLoop { time_scale } => replay_into_sharded(
            device,
            Schedule::open_loop_ops(trace, time_scale),
            config,
            sink,
            chunk,
        )?,
    };
    Ok(out.stats)
}

/// Runs one stage materialised (used for every stage except a final one
/// feeding a sink).
fn run_stage(trace: &Trace, stage: Stage<'_>, chunk: usize) -> Result<Trace, TraceError> {
    match stage {
        Stage::Reconstruct { device, method } => Ok(method.reconstruct(trace, device)),
        Stage::Replay {
            device,
            mode,
            config,
        } => {
            let mut sink = tt_trace::TraceSink::new(
                TraceMeta::named(trace.meta().name.clone()).with_source("tt-sim collector"),
            );
            // The sink is in-memory, but a faulty device with an abort
            // policy can still fail the replay — propagate it.
            replay_stage_into(device, trace, mode, config, &mut sink, chunk)?;
            Ok(sink.into_trace())
        }
    }
}

/// Runs one stage with a materialised input trace, streaming its output
/// into `sink` — the shape of a chain's *first* stage (and of every stage
/// under the materialised executor).
fn run_stage_into(
    stage: Stage<'_>,
    trace: &Trace,
    sink: &mut dyn RecordSink,
    chunk: usize,
) -> Result<SinkStats, TraceError> {
    match stage {
        Stage::Reconstruct { device, method } => {
            method.reconstruct_into(trace, device, sink, chunk)
        }
        Stage::Replay {
            device,
            mode,
            config,
        } => replay_stage_into(device, trace, mode, config, sink, chunk),
    }
}

/// Runs one stage with a **streamed** input, streaming its output into
/// `sink` — the shape of every non-first stage under the fused executor.
///
/// A replay stage is record-incremental and consumes the stream directly
/// ([`replay_source_into`]); a reconstruction stage infers timing from its
/// whole input, so it collects the stream into this stage's one input
/// trace first — the algorithm's requirement, not executor overhead.
fn run_stage_streamed(
    stage: Stage<'_>,
    source: &mut dyn RecordSource,
    name: &str,
    sink: &mut dyn RecordSink,
    chunk: usize,
) -> Result<SinkStats, TraceError> {
    match stage {
        Stage::Reconstruct { device, method } => {
            let collected = collect_source(
                source,
                TraceMeta::named(name).with_source("tt-sim collector"),
                chunk,
            )?;
            method.reconstruct_into(&collected, device, sink, chunk)
        }
        Stage::Replay {
            device,
            mode,
            config,
        } => {
            let out = replay_source_into_sharded(device, source, mode, chunk, config, sink)?;
            Ok(out.stats)
        }
    }
}

/// Runs the final stage streamed into `sink` (or drains the trace when no
/// stage is left).
fn write_stage(
    trace: &Trace,
    last: Option<Stage<'_>>,
    sink: &mut dyn RecordSink,
    chunk: usize,
) -> Result<SinkStats, TraceError> {
    match last {
        None => {
            let stats = SinkStats {
                records: trace.len(),
                first: trace.start(),
                last: trace.end(),
            };
            drain_trace(trace, sink, chunk)?;
            Ok(stats)
        }
        Some(stage) => run_stage_into(stage, trace, sink, chunk),
    }
}

/// The metadata a staged pipeline's collected output carries — matching
/// what the materialised executor's final stage would have produced, so
/// fused and materialised `collect()` results are identical including
/// provenance.
fn final_meta(name: &str, stage: &Stage<'_>) -> TraceMeta {
    match stage {
        Stage::Reconstruct { method, .. } => {
            TraceMeta::named(name).with_source(method.source_label())
        }
        Stage::Replay { .. } => TraceMeta::named(name).with_source("tt-sim collector"),
    }
}

/// In-flight chunks a fused stage-boundary channel may hold by default —
/// the backpressure bound: a fused chain buffers at most this many chunks
/// of [`Pipeline::chunk_size`] records between any two stages (the "small
/// multiple of the chunk size" of the executor contract).
/// [`Pipeline::channel_capacity`] overrides it; [`Pipeline::auto`] may
/// raise it for balanced chains.
pub const FUSED_CHANNEL_CHUNKS: usize = 4;

/// The resolved execution knobs a terminal hands the executor — what the
/// builder's five knob methods (plus the autotuner) boil down to.
struct Exec {
    chunk: usize,
    fused: bool,
    capacity: usize,
    probe: Option<Arc<ChannelProbe>>,
    recorder: Option<Arc<FlightRecorder>>,
}

/// What flows between fused stages: a chunk of records, or the upstream
/// stage's failure being forwarded so the terminal reports it (and never
/// mistakes a failed upstream for a clean end-of-stream).
type Msg = Result<Vec<BlockRecord>, TraceError>;

/// A [`RecordSource`] over a fused stage-boundary channel: yields the
/// upstream stage's chunks in order, re-raising a forwarded upstream
/// error, and treating a closed channel as end-of-stream.
struct ChannelSource {
    rx: bounded::Receiver<Msg>,
    buf: Vec<BlockRecord>,
    pos: usize,
    done: bool,
}

impl ChannelSource {
    fn new(rx: bounded::Receiver<Msg>) -> Self {
        ChannelSource {
            rx,
            buf: Vec::new(),
            pos: 0,
            done: false,
        }
    }
}

impl RecordSource for ChannelSource {
    fn next_chunk(&mut self, out: &mut Vec<BlockRecord>, max: usize) -> Result<usize, TraceError> {
        let mut appended = 0;
        while appended < max && !self.done {
            if self.pos >= self.buf.len() {
                match self.rx.recv() {
                    Some(Ok(chunk)) => {
                        self.buf = chunk;
                        self.pos = 0;
                        continue;
                    }
                    Some(Err(e)) => {
                        self.done = true;
                        return Err(e);
                    }
                    None => {
                        self.done = true;
                        break;
                    }
                }
            }
            let take = (self.buf.len() - self.pos).min(max - appended);
            out.extend_from_slice(&self.buf[self.pos..self.pos + take]);
            self.pos += take;
            appended += take;
        }
        Ok(appended)
    }

    fn source_name(&self) -> &str {
        "fused stage"
    }
}

/// A [`RecordSink`] over a fused stage-boundary channel: each pushed chunk
/// becomes one bounded-channel message (blocking when the downstream stage
/// is `FUSED_CHANNEL_CHUNKS` chunks behind — the backpressure). A closed
/// channel (the downstream stage died) surfaces as an error so the running
/// stage aborts promptly; the worker then defers to the downstream
/// stage's own failure.
struct ChannelSink<'a> {
    tx: &'a bounded::Sender<Msg>,
    disconnected: bool,
}

impl RecordSink for ChannelSink<'_> {
    fn push_chunk(&mut self, records: &[BlockRecord]) -> Result<(), TraceError> {
        if self.tx.send(Ok(records.to_vec())).is_err() {
            self.disconnected = true;
            return Err(TraceError::Io(
                "fused pipeline: downstream stage closed".to_string(),
            ));
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<(), TraceError> {
        // End-of-stream is signalled by dropping the sender when the
        // worker returns; nothing to flush.
        Ok(())
    }

    fn sink_name(&self) -> &str {
        "fused stage"
    }
}

/// One fused worker: runs `stage` off its input (the pipeline input trace
/// for the first stage, the upstream channel otherwise) into the
/// downstream channel. Returns the records the stage emitted, and an
/// error only when it could not be forwarded downstream; forwarded and
/// deferred-to-downstream failures surface at the terminal instead.
fn stage_worker(
    stage: Stage<'_>,
    input: &Trace,
    upstream: Option<bounded::Receiver<Msg>>,
    name: &str,
    tx: &bounded::Sender<Msg>,
    chunk: usize,
) -> (Option<TraceError>, usize) {
    let mut out = ChannelSink {
        tx,
        disconnected: false,
    };
    let result = match upstream {
        None => run_stage_into(stage, input, &mut out, chunk),
        Some(rx) => run_stage_streamed(stage, &mut ChannelSource::new(rx), name, &mut out, chunk),
    };
    let disconnected = out.disconnected;
    match result {
        Ok(stats) => (None, stats.records),
        // The downstream stage hung up first: its own failure is the one
        // the terminal reports; this stage just stops.
        Err(_) if disconnected => (None, 0),
        Err(e) => match tx.send(Err(e)) {
            Ok(()) => (None, 0),
            // Downstream vanished between the failure and the forward —
            // report it from here so it cannot get lost.
            Err(msg) => (Some(msg.expect_err("only failures are sent back")), 0),
        },
    }
}

/// The one executor dispatch point behind every sink-terminated run
/// ([`Pipeline::write_to`], [`Pipeline::write_path`], and the staged
/// [`Pipeline::collect`] path): chains of two or more stages run
/// [`fused_chain`] unless [`Pipeline::materialize`] asked otherwise;
/// everything else runs stage-at-a-time with the last stage streaming
/// into `sink`.
fn execute(
    mut trace: Cow<'_, Trace>,
    mut stages: Vec<Stage<'_>>,
    sink: &mut dyn RecordSink,
    exec: &Exec,
) -> Result<SinkStats, TraceError> {
    if exec.fused && stages.len() >= 2 {
        return fused_chain(&trace, stages, sink, exec);
    }
    let last = stages.pop();
    let mut index = 1;
    for stage in stages {
        let label = stage.label();
        let started = Instant::now();
        trace = Cow::Owned(run_stage(&trace, stage, exec.chunk)?);
        if let Some(rec) = &exec.recorder {
            rec.record_stage(index, label, started.elapsed(), trace.len(), None, None);
        }
        index += 1;
    }
    let label = last.as_ref().map_or("write", Stage::label);
    let started = Instant::now();
    let stats = write_stage(&trace, last, sink, exec.chunk)?;
    if let Some(rec) = &exec.recorder {
        rec.record_stage(index, label, started.elapsed(), stats.records, None, None);
    }
    Ok(stats)
}

/// The fused executor: stages pipelined on scoped worker threads, chained
/// by bounded chunk channels, the last stage running on the calling
/// thread straight into `sink`. See the module docs for the contract.
///
/// With a recorder attached, every stage boundary gets its own
/// [`ChannelStats`] block: the producer worker owns its send-waits, the
/// consumer its recv-waits, and each worker records its own wall clock —
/// so the assembled flight log attributes every blocked nanosecond to the
/// stage that was blocked. The probe (when also attached) keeps its
/// all-boundaries aggregation contract via a second stats block on the
/// same channels.
fn fused_chain(
    trace: &Trace,
    mut stages: Vec<Stage<'_>>,
    sink: &mut dyn RecordSink,
    exec: &Exec,
) -> Result<SinkStats, TraceError> {
    // lint:allow(panic) -- the sole caller (execute) dispatches here only when stages.len() >= 2
    let last = stages.pop().expect("fused chains have at least two stages");
    let worker_count = stages.len();
    let input_name = trace.meta().name.clone();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(worker_count);
        let mut prev_rx: Option<bounded::Receiver<Msg>> = None;
        let mut prev_stats: Option<Arc<ChannelStats>> = None;
        for (i, stage) in stages.into_iter().enumerate() {
            let boundary = exec
                .recorder
                .as_ref()
                .map(|_| Arc::new(ChannelStats::new()));
            let mut stats = Vec::new();
            if let Some(probe) = &exec.probe {
                stats.push(probe.stats());
            }
            if let Some(boundary) = &boundary {
                stats.push(Arc::clone(boundary));
            }
            let (tx, rx) = bounded::channel_instrumented(exec.capacity, stats);
            let upstream = prev_rx.take();
            let in_stats = prev_stats.take();
            let out_stats = boundary.clone();
            let name = input_name.clone();
            let recorder = exec.recorder.clone();
            let chunk = exec.chunk;
            handles.push(scope.spawn(move || {
                let label = stage.label();
                let started = Instant::now();
                let (error, records) = stage_worker(stage, trace, upstream, &name, &tx, chunk);
                if let Some(rec) = &recorder {
                    rec.record_stage(
                        i + 1,
                        label,
                        started.elapsed(),
                        records,
                        in_stats,
                        out_stats,
                    );
                }
                error
            }));
            prev_rx = Some(rx);
            prev_stats = boundary;
        }
        // lint:allow(panic) -- the worker loop above ran at least once (two-stage minimum), installing prev_rx
        let rx = prev_rx.expect("at least one worker stage");
        let last_label = last.label();
        let started = Instant::now();
        let final_result = run_stage_streamed(
            last,
            &mut ChannelSource::new(rx),
            &input_name,
            sink,
            exec.chunk,
        );
        if let Some(rec) = &exec.recorder {
            let records = final_result.as_ref().map_or(0, |s| s.records);
            rec.record_stage(
                worker_count + 1,
                last_label,
                started.elapsed(),
                records,
                prev_stats.take(),
                None,
            );
        }
        let mut worker_error: Option<TraceError> = None;
        for handle in handles {
            if let Some(e) = handle
                .join()
                .unwrap_or_else(|p| std::panic::resume_unwind(p))
            {
                worker_error.get_or_insert(e);
            }
        }
        match (final_result, worker_error) {
            (Err(e), _) => Err(e),
            (Ok(_), Some(e)) => Err(e),
            (Ok(stats), None) => Ok(stats),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_core::{Revision, TraceTracker};
    use tt_device::presets;
    use tt_sim::{replay, Schedule};
    use tt_trace::format::csv::CsvSink;
    use tt_trace::time::SimInstant;
    use tt_trace::{BlockRecord, OpType};
    use tt_workloads::{catalog, generate_session};

    fn old_trace(n: usize, seed: u64) -> Trace {
        let entry = catalog::find("MSNFS").unwrap();
        let session = generate_session("MSNFS", &entry.profile, n, seed);
        let mut node = presets::enterprise_hdd_2007();
        session.materialize(&mut node, false).trace
    }

    #[test]
    fn collect_equals_free_function_reconstruct() {
        let old = old_trace(300, 5);
        let mut d1 = presets::intel_750_array();
        let mut d2 = presets::intel_750_array();
        let direct = TraceTracker::new().reconstruct(&old, &mut d1);
        let piped = Pipeline::from_trace(old)
            .reconstruct(&mut d2, TraceTracker::new())
            .collect()
            .unwrap();
        assert_eq!(piped, direct);
    }

    #[test]
    fn write_to_streams_the_same_bytes_as_write_csv() {
        let old = old_trace(300, 6);
        let mut d1 = presets::intel_750_array();
        let mut d2 = presets::intel_750_array();

        let direct = Revision::new().reconstruct(&old, &mut d1);
        let mut whole = Vec::new();
        tt_trace::format::csv::write_csv(&direct, &mut whole).unwrap();

        let mut streamed = Vec::new();
        let stats = Pipeline::from_trace(old)
            .chunk_size(17)
            .reconstruct(&mut d2, Revision::new())
            .write_to(&mut CsvSink::new(&mut streamed, direct.meta().name.clone()))
            .unwrap();
        assert_eq!(stats.records, direct.len());
        assert_eq!(streamed, whole);
    }

    #[test]
    fn replay_stage_equals_schedule_replay() {
        let old = old_trace(200, 7);
        let mut d1 = presets::intel_750_array();
        let mut d2 = presets::intel_750_array();
        let direct = replay(
            &mut d1,
            &Schedule::open_loop(&old, 1.0),
            &old.meta().name,
            ReplayConfig::default(),
        );
        let piped = Pipeline::from_trace(old)
            .replay(&mut d2, StreamReplay::OpenLoop { time_scale: 1.0 })
            .collect()
            .unwrap();
        assert_eq!(piped.records(), direct.trace.records());
    }

    #[test]
    fn passthrough_write_sorts_like_the_loaders() {
        // Unsorted source input: the pipeline must produce the same bytes
        // as collect-then-write (which sorts).
        let recs = vec![
            BlockRecord::new(SimInstant::from_usecs(30), 0, 8, OpType::Read),
            BlockRecord::new(SimInstant::from_usecs(10), 8, 8, OpType::Write),
        ];
        let trace = Trace::from_records(TraceMeta::named("x"), recs.clone());
        let mut whole = Vec::new();
        tt_trace::format::csv::write_csv(&trace, &mut whole).unwrap();

        let mut streamed = Vec::new();
        let stats = Pipeline::from_source(tt_trace::source::VecSource::new(recs), "x")
            .write_to(&mut CsvSink::new(&mut streamed, "x"))
            .unwrap();
        assert_eq!(stats.records, 2);
        assert_eq!(streamed, whole);
    }

    #[test]
    fn from_trace_ref_matches_from_trace() {
        let old = old_trace(200, 10);
        let mut d1 = presets::intel_750_array();
        let mut d2 = presets::intel_750_array();
        let owned = Pipeline::from_trace(old.clone())
            .reconstruct(&mut d1, TraceTracker::new())
            .collect()
            .unwrap();
        let borrowed = Pipeline::from_trace_ref(&old)
            .reconstruct(&mut d2, TraceTracker::new())
            .collect()
            .unwrap();
        assert_eq!(owned, borrowed);
        // The borrowed input is untouched and still usable.
        assert_eq!(old.len(), 200);
    }

    #[test]
    fn ttb_write_path_and_from_path_round_trip() {
        // The stage-less TTB fast path (bulk columnar write) and the TTB
        // bulk load must agree with the in-memory trace exactly.
        let old = old_trace(300, 12);
        let path = std::env::temp_dir().join("tt_pipeline_cache.ttb");
        let stats = Pipeline::from_trace_ref(&old).write_path(&path).unwrap();
        assert_eq!(stats.records, old.len());
        assert_eq!(stats.first, old.start());
        let back = Pipeline::from_path(&path).collect().unwrap();
        assert_eq!(back.records(), old.records());
        assert_eq!(back.columns(), old.columns());
        assert_eq!(back.meta().source, "ttb");

        // A staged pipeline ending in .ttb streams through TtbSink and
        // decodes to the same records as the materialised equivalent.
        let mut d1 = presets::intel_750_array();
        let mut d2 = presets::intel_750_array();
        let staged = std::env::temp_dir().join("tt_pipeline_staged.ttb");
        Pipeline::from_trace_ref(&old)
            .chunk_size(17)
            .reconstruct(&mut d1, TraceTracker::new())
            .write_path(&staged)
            .unwrap();
        let direct = TraceTracker::new().reconstruct(&old, &mut d2);
        let streamed = Pipeline::from_path(&staged).collect().unwrap();
        assert_eq!(streamed.records(), direct.records());

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&staged).ok();
    }

    #[test]
    fn ttb_analysis_terminals_map_the_file_and_match_every_path() {
        let old = old_trace(300, 13);
        let path = std::env::temp_dir().join("tt_pipeline_mmap.ttb");
        Pipeline::from_trace_ref(&old).write_path(&path).unwrap();

        let cfg = InferenceConfig::default();
        // In-memory, mapped (default), and forced-bulk paths must agree
        // exactly on every analysis terminal.
        let g_mem = Pipeline::from_trace_ref(&old).group().unwrap();
        let g_map = Pipeline::from_path(&path).group().unwrap();
        let g_bulk = Pipeline::from_path(&path).mmap(false).group().unwrap();
        assert_eq!(g_map, g_mem);
        assert_eq!(g_bulk, g_mem);

        let s_mem = Pipeline::from_trace_ref(&old).stats().unwrap();
        assert_eq!(Pipeline::from_path(&path).stats().unwrap(), s_mem);

        let i_mem = Pipeline::from_trace_ref(&old).infer(&cfg).unwrap();
        assert_eq!(Pipeline::from_path(&path).infer(&cfg).unwrap(), i_mem);

        let vcfg = tt_core::VerifyConfig::default();
        let period = SimDuration::from_msecs(10);
        let v_mem = Pipeline::from_trace_ref(&old)
            .verify(period, &vcfg)
            .unwrap();
        let v_map = Pipeline::from_path(&path).verify(period, &vcfg).unwrap();
        assert_eq!(v_map, v_mem);

        // A corrupt file errors identically with the knob on or off.
        let mut bytes = std::fs::read(&path).unwrap();
        let cut = bytes.len() / 2;
        bytes.truncate(cut);
        let bad = std::env::temp_dir().join("tt_pipeline_mmap_bad.ttb");
        std::fs::write(&bad, &bytes).unwrap();
        let e_map = Pipeline::from_path(&bad).stats().unwrap_err().to_string();
        let e_bulk = Pipeline::from_path(&bad)
            .mmap(false)
            .stats()
            .unwrap_err()
            .to_string();
        assert_eq!(e_map, e_bulk);
        assert!(e_map.contains("truncated TTB file"), "{e_map}");

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn write_path_rejects_bad_extensions_before_any_work() {
        let old = old_trace(50, 11);
        let mut dev = presets::intel_750_array();
        let err = Pipeline::from_trace_ref(&old)
            .reconstruct(&mut dev, TraceTracker::new())
            .write_path("/tmp/tt_pipeline_out.parquet")
            .err()
            .unwrap();
        assert!(err.to_string().contains("parquet"), "{err}");
        assert!(!std::path::Path::new("/tmp/tt_pipeline_out.parquet").exists());
    }

    #[test]
    fn parse_errors_name_the_file() {
        let path = std::env::temp_dir().join("tt_pipeline_bad.csv");
        std::fs::write(&path, "not a valid line\n").unwrap();
        let err = Pipeline::from_path(&path).collect().err().unwrap();
        let msg = err.to_string();
        assert!(msg.contains("tt_pipeline_bad.csv"), "{msg}");
        assert!(msg.contains("line 1"), "{msg}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_errors_name_the_file_exactly_once() {
        // File-open failures already embed the path; the pipeline's error
        // context must not prefix it a second time.
        let err = Pipeline::from_path("/definitely/not/here.csv")
            .collect()
            .err()
            .unwrap();
        let msg = err.to_string();
        assert_eq!(msg.matches("not/here.csv").count(), 1, "{msg}");
    }

    #[test]
    fn analysis_terminals_run() {
        let old = old_trace(200, 8);
        let grouped = Pipeline::from_trace(old.clone()).group().unwrap();
        assert!(grouped.group_count() > 0);
        let stats = Pipeline::from_trace(old.clone()).stats().unwrap();
        assert_eq!(stats.requests, old.len());
        let result = Pipeline::from_trace(old)
            .infer(&InferenceConfig::default())
            .unwrap();
        assert!(result.estimate.beta_ns_per_sector >= 0.0);
    }
}
