//! # TraceTracker — hardware/software co-evaluation for I/O workload reconstruction
//!
//! A full reproduction of *TraceTracker: Hardware/Software Co-Evaluation
//! for Large-Scale I/O Workload Reconstruction* (Kwon et al., IISWC 2017),
//! built as a Rust workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`trace`] (`tt-trace`) | block-trace data model, grouping, formats |
//! | [`stats`] (`tt-stats`) | ECDF/PDF, Algorithm 1, pchip/spline interpolation |
//! | [`device`] (`tt-device`) | HDD, flash SSD / array, linear device models |
//! | [`sim`] (`tt-sim`) | discrete-event replay engine + blktrace-style collector |
//! | [`workloads`] (`tt-workloads`) | 31-workload Table I catalog, session generator |
//! | [`core`] (`tt-core`) | inference, reconstruction methods, verification, reports |
//!
//! This facade re-exports every crate and offers a [`prelude`] for
//! applications.
//!
//! ## Quickstart
//!
//! ```
//! use tracetracker::prelude::*;
//!
//! // 1. A decade-old trace: webusers behaviour on a 2007 disk.
//! let entry = catalog::find("webusers").unwrap();
//! let session = generate_session("webusers", &entry.profile, 300, 7);
//! let mut old_node = presets::enterprise_hdd_2007();
//! let old = session.materialize(&mut old_node, false).trace;
//!
//! // 2. Revive it on an all-flash array with TraceTracker.
//! let mut new_node = presets::intel_750_array();
//! let revived = TraceTracker::new().reconstruct(&old, &mut new_node);
//!
//! assert_eq!(revived.len(), old.len());
//! ```

#![warn(missing_docs)]

pub use tt_core as core;
pub use tt_device as device;
pub use tt_sim as sim;
pub use tt_stats as stats;
pub use tt_trace as trace;
pub use tt_workloads as workloads;

/// One-stop imports for applications using the pipeline end to end.
pub mod prelude {
    pub use tt_core::{
        infer, verify_injection, Acceleration, Decomposition, DeviceEstimate, Dynamic,
        FixedThreshold, InferenceConfig, InferenceResult, Reconstructor, Revision, TraceTracker,
        VerifyConfig,
    };
    pub use tt_device::{presets, BlockDevice, IoRequest, ServiceOutcome};
    pub use tt_sim::{replay, IssueMode, ReplayConfig, Schedule, ScheduledOp};
    pub use tt_trace::{
        time::{SimDuration, SimInstant},
        BlockRecord, GroupedTrace, OpType, Trace, TraceMeta, TraceStats,
    };
    pub use tt_workloads::{catalog, generate_session, inject_idle, Session, WorkloadProfile};
}
