#![forbid(unsafe_code)]
//! # TraceTracker — hardware/software co-evaluation for I/O workload reconstruction
//!
//! A full reproduction of *TraceTracker: Hardware/Software Co-Evaluation
//! for Large-Scale I/O Workload Reconstruction* (Kwon et al., IISWC 2017),
//! built as a Rust workspace around a **streaming, columnar, parallel**
//! trace pipeline:
//!
//! | crate | contents |
//! |---|---|
//! | [`trace`] (`tt-trace`) | block-trace data model: columnar [`TraceStore`](trace::TraceStore) (struct-of-arrays), streaming [`RecordSource`](trace::RecordSource) readers, single-pass grouping, CSV/blkparse/TTB formats |
//! | [`stats`] (`tt-stats`) | ECDF/PDF numerics over borrowed sample slices, Algorithm 1 steepness, pchip/spline interpolation |
//! | [`device`] (`tt-device`) | HDD, flash SSD / array, linear device models |
//! | [`sim`] (`tt-sim`) | discrete-event replay engine, blktrace-style collector, chunked [`replay_source`](sim::replay_source) streaming replay, streamed concurrent replay ([`sim::replay_concurrent_sources`]) |
//! | [`workloads`] (`tt-workloads`) | 31-workload Table I catalog, session generator |
//! | [`core`] (`tt-core`) | inference (parallel per-group CDF analysis), reconstruction methods, verification, reports |
//! | [`par`] (`tt-par`) | deterministic scoped-thread parallel helpers behind grouping/inference, plus the bounded SPSC channel ([`par::bounded`]) behind the fused executor |
//!
//! Traces live in struct-of-arrays columns, are consumed chunk-by-chunk
//! from disk, and fan grouping + per-group CDF analysis out across cores —
//! with **bit-identical** results at any worker count
//! ([`par::set_threads`]). External dependencies (`serde`, `rand`,
//! `proptest`, `criterion`) are satisfied by offline stand-ins under
//! `compat/`, so the workspace builds with no registry access.
//!
//! This facade re-exports every crate, adds the [`Pipeline`] builder —
//! the public API the CLI, examples, and applications compose the
//! workspace through — and offers a [`prelude`].
//!
//! ## Quickstart: the `Pipeline` API
//!
//! `RecordSource → stages → RecordSink`: start a pipeline from a file, a
//! streaming source, or a trace; chain transform stages; end in a
//! collected trace, a streamed sink, or an analysis result.
//!
//! ```
//! use tracetracker::prelude::*;
//!
//! // 1. A decade-old trace: webusers behaviour on a 2007 disk.
//! let entry = catalog::find("webusers").unwrap();
//! let session = generate_session("webusers", &entry.profile, 300, 7);
//! let mut old_node = presets::enterprise_hdd_2007();
//! let old = session.materialize(&mut old_node, false).trace;
//!
//! // 2. Revive it on an all-flash array with TraceTracker
//! //    (`from_trace_ref` borrows — the old trace is not copied).
//! let mut new_node = presets::intel_750_array();
//! let revived = Pipeline::from_trace_ref(&old)
//!     .reconstruct(&mut new_node, TraceTracker::new())
//!     .collect()
//!     .unwrap();
//! assert_eq!(revived.len(), old.len());
//!
//! // Analysis terminals ride the same builder:
//! let estimate = Pipeline::from_trace_ref(&old)
//!     .infer(&InferenceConfig::default())
//!     .unwrap()
//!     .estimate;
//! assert!(estimate.beta_ns_per_sector >= 0.0);
//! ```
//!
//! ## Streaming quickstart
//!
//! When a pipeline ends in a sink ([`Pipeline::write_to`] /
//! [`Pipeline::write_path`]), the final stage pushes records into it chunk
//! by chunk as they are produced — reconstructing a trace **to disk**
//! holds one trace in memory, never two. Sources stream the same way on
//! the read side.
//!
//! ```
//! use tracetracker::prelude::*;
//! use tracetracker::trace::format::csv::{CsvSink, CsvSource};
//!
//! let file = "# trace\n0.0,R,0,8\n150.5,R,8,8\n900.0,W,5000,16\n";
//!
//! // Stream-parse → reconstruct → stream-serialise, 64Ki records a chunk.
//! let mut device = presets::intel_750_array();
//! let mut out = Vec::new();
//! let stats = Pipeline::from_source(CsvSource::new(file.as_bytes()), "demo")
//!     .reconstruct(&mut device, TraceTracker::new())
//!     .write_to(&mut CsvSink::new(&mut out, "demo"))
//!     .unwrap();
//! assert_eq!(stats.records, 3);
//! assert!(String::from_utf8(out).unwrap().starts_with("# trace: demo"));
//!
//! // Or replay the stream against a device without building the trace.
//! let mut source = CsvSource::new(file.as_bytes());
//! let out = replay_source(
//!     &mut device,
//!     &mut source,
//!     "demo",
//!     StreamReplay::OpenLoop { time_scale: 1.0 },
//!     65_536,
//!     ReplayConfig::default(),
//! ).unwrap();
//! assert_eq!(out.trace.len(), 3);
//! ```
//!
//! The pre-`Pipeline` free functions (`infer`, `Reconstructor::
//! reconstruct`, `write_csv`, …) remain available and are thin drains over
//! the same streaming code paths — byte-identical output, property-tested.
//!
//! ## Fused chains: `reconstruct → replay` without the middle trace
//!
//! Multi-stage chains run on the **fused streaming executor** by default:
//! each transform stage is a worker on its own scoped thread, connected
//! to the next by a bounded chunk channel ([`par::bounded`], capacity
//! [`FUSED_CHANNEL_CHUNKS`] chunks — the backpressure bound). The paper's
//! co-evaluation chain therefore holds the input trace plus a handful of
//! in-flight chunks, never a materialised intermediate trace:
//!
//! ```
//! use tracetracker::prelude::*;
//!
//! let entry = catalog::find("MSNFS").unwrap();
//! let session = generate_session("MSNFS", &entry.profile, 200, 7);
//! let mut old_node = presets::enterprise_hdd_2007();
//! let old = session.materialize(&mut old_node, false).trace;
//!
//! // Reconstruct onto a flash array AND replay the result closed-loop on
//! // a second array, in one fused pass: replay consumes reconstructed
//! // chunks the moment the simulated device produces them.
//! let mut new_node = presets::intel_750_array();
//! let mut probe_node = presets::intel_750_array();
//! let probe = std::sync::Arc::new(ChannelProbe::new());
//! let serviced = Pipeline::from_trace_ref(&old)
//!     .channel_probe(&probe)
//!     .reconstruct(&mut new_node, TraceTracker::new())
//!     .replay(&mut probe_node, StreamReplay::ClosedLoop)
//!     .collect()
//!     .unwrap();
//! assert_eq!(serviced.len(), old.len());
//! // The probe witnesses the bound: never more than the channel capacity
//! // in flight between the two stages.
//! assert!(probe.peak_depth() <= tracetracker::FUSED_CHANNEL_CHUNKS);
//! ```
//!
//! Fused and materialised ([`Pipeline::materialize`]) execution are
//! **bit-identical** at any chunk size and worker count
//! (property-tested); ordering is part of the executor contract — every
//! stage consumes and emits records in arrival order, so nothing is ever
//! re-sorted between stages. One caveat is algorithmic, not executor
//! overhead: a *mid-chain* reconstruction stage collects its own input
//! first, because timing inference reads its whole input trace.
//!
//! ## Multi-stream fan-in: the co-evaluation scenarios
//!
//! [`Pipeline::from_paths`] / [`Pipeline::from_sources`] /
//! [`Pipeline::from_traces`] / [`Pipeline::from_trace_refs`] open a
//! [`MultiPipeline`]: N input streams, each record tagged with its origin
//! stream, merged in arrival order ([`trace::MultiSource`]). The
//! [`MultiPipeline::replay_concurrent`] stage routes the streams through
//! the shared-device concurrent replay core
//! ([`sim::replay_concurrent_sources`]) — several tenants, one storage
//! box — pulling each stream chunk by chunk, and the per-stream terminals
//! ([`MultiPipeline::collect_all`], [`MultiPipeline::write_paths`],
//! [`MultiPipeline::stats_per_stream`]) demultiplex the merged result by
//! tag. `tt-cli replay a.csv b.csv c.csv` is the command-line spelling.
//! See `examples/multi_tenant.rs` for the full consolidation study.
//!
//! ## Reload-heavy workflows: the TTB binary cache
//!
//! Re-analysing the same trace many times pays CSV parsing on every
//! reload. Convert once to the native binary columnar format
//! ([`trace::format::ttb`], extension `.ttb`) and reloads become validated
//! bulk reads straight into the columnar store — one `write_path` away:
//!
//! ```no_run
//! use tracetracker::prelude::*;
//!
//! // Convert once (also: `tt-cli convert trace.csv trace.ttb`)...
//! Pipeline::from_path("trace.csv").write_path("trace.ttb").unwrap();
//! // ...reload many, ~an order of magnitude faster than parsing the CSV.
//! let trace = Pipeline::from_path("trace.ttb").collect().unwrap();
//! # let _ = trace;
//! ```
//!
//! The cache is lossless (`CSV → TTB → CSV` is byte-identical,
//! property-tested) and corrupt or truncated files are rejected with
//! clear errors; see `examples/binary_cache.rs` for the full workflow.
//!
//! ## Zero-copy analysis: the memory-mapped `.ttb` view
//!
//! Even the bulk read pays one full copy of every column into heap
//! `Vec`s. Stage-less **analysis terminals** on a `.ttb` input skip it:
//! the file is memory-mapped ([`trace::MmapTrace`]) and the columns are
//! grouped/inferred/summarised **in place**, straight out of the page
//! cache — O(1) resident growth for the load step:
//!
//! ```no_run
//! use tracetracker::prelude::*;
//!
//! // Mapped automatically: no bulk copy before the analysis starts.
//! let cfg = InferenceConfig::default();
//! let result = Pipeline::from_path("trace.ttb").infer(&cfg).unwrap();
//! # let _ = result;
//! ```
//!
//! Safety and equivalence contract: the map is validated once at open
//! (header, blocks, trailer, op bytes, sector counts, timing order,
//! alignment pads), misaligned or corrupt files can never reach a typed
//! view, and every analysis result is **bit-identical** to the bulk-read
//! path (property-tested). Files that cannot be viewed in place —
//! TTB v1, multi-block streams, unsorted blocks — transparently fall back
//! to the copying decode, as do consumers that need ownership (transform
//! stages, [`Pipeline::verify`]'s idle injection). Knobs:
//! [`Pipeline::mmap`] (default on) and `tt-cli --mmap`/`--no-mmap`; the
//! exact zero-copy conditions live in [`trace::format::ttb`].
//!
//! ## Observability & tuning: the flight recorder and `auto()`
//!
//! Attach a [`FlightRecorder`] and every run reports **per-stage** timing:
//! busy time, time blocked sending into a full downstream queue, time
//! blocked starving on an empty upstream one — measured at the bounded
//! channel boundaries with a monotonic clock — plus record/chunk counts
//! and queue high-water marks. The assembled [`FlightLog`] renders as
//! one line of JSON ([`FlightLog::to_json`], the shape `tt-cli --timings`
//! emits) or one human line per stage ([`FlightLog::render`]). Recording
//! only observes: outputs are **bit-identical** with the recorder on or
//! off, and the bench gates its overhead below 5%
//! (see [`par::telemetry`] for the exact contract).
//!
//! ```
//! use std::sync::Arc;
//! use tracetracker::prelude::*;
//! use tracetracker::FlightRecorder;
//!
//! let entry = catalog::find("MSNFS").unwrap();
//! let session = generate_session("MSNFS", &entry.profile, 300, 7);
//! let mut old_node = presets::enterprise_hdd_2007();
//! let old = session.materialize(&mut old_node, false).trace;
//!
//! let mut new_node = presets::intel_750_array();
//! let mut replay_node = presets::intel_750_array();
//! let recorder = Arc::new(FlightRecorder::new());
//! Pipeline::from_trace_ref(&old)
//!     .flight_recorder(&recorder)
//!     .reconstruct(&mut new_node, TraceTracker::new())
//!     .replay(&mut replay_node, StreamReplay::ClosedLoop)
//!     .collect()
//!     .unwrap();
//!
//! let log = recorder.flight_log();
//! assert_eq!(log.stages.len(), 3); // load + reconstruct + replay
//! println!("{}", log.render());
//! ```
//!
//! [`Pipeline::auto`] closes the loop: it picks the worker count, chunk
//! size and channel capacity itself — the capacity from a short
//! calibration prefix timed by a private recorder (see [`tune`] for the
//! policy). Every knob is output-invariant, so `auto()` is always safe;
//! `tt-cli --parallel auto` is the command-line spelling.
//! `examples/flight_recorder.rs` walks through reading a flight log and
//! what each imbalance means.

#![warn(missing_docs)]

pub use tt_core as core;
pub use tt_device as device;
pub use tt_par as par;
pub use tt_sim as sim;
pub use tt_stats as stats;
pub use tt_trace as trace;
pub use tt_workloads as workloads;

mod multi_pipeline;
mod pipeline;
pub mod tune;

pub use multi_pipeline::MultiPipeline;
pub use pipeline::{Pipeline, FUSED_CHANNEL_CHUNKS};
pub use tt_par::telemetry::{ChannelStats, FlightLog, FlightRecorder, StageReport};

/// One-stop imports for applications using the pipeline end to end.
pub mod prelude {
    pub use crate::multi_pipeline::MultiPipeline;
    pub use crate::pipeline::Pipeline;
    pub use tt_core::{
        infer, infer_columns, verify_injection, Acceleration, Decomposition, DeviceEstimate,
        Dynamic, FixedThreshold, InferenceConfig, InferenceResult, Reconstructor, Revision,
        TraceTracker, VerifyConfig,
    };
    pub use tt_device::{
        presets, BlockDevice, FaultPlan, FaultyDevice, IoRequest, ServiceFault, ServiceOutcome,
    };
    pub use tt_par::bounded::ChannelProbe;
    pub use tt_par::telemetry::{FlightLog, FlightRecorder, StageReport};
    pub use tt_sim::{
        replay, replay_concurrent, replay_concurrent_sources, replay_concurrent_tagged,
        replay_into, replay_records, replay_source, replay_source_into, ConcurrentOutcome,
        FaultEvent, FaultStats, IssueMode, ReplayConfig, RetryPolicy, Schedule, ScheduledOp,
        StreamReplay,
    };
    pub use tt_trace::{
        time::{SimDuration, SimInstant},
        BlockRecord, Columns, ErrorPolicy, GroupedTrace, MmapTrace, MultiSource, OpType,
        QuarantineLog, RecordSink, RecordSource, SinkStats, TaggedRecord, TolerantSource, Trace,
        TraceError, TraceMeta, TraceSink, TraceStats, TraceStore,
    };
    pub use tt_workloads::{catalog, generate_session, inject_idle, Session, WorkloadProfile};
}
