//! The [`Pipeline::auto`](crate::Pipeline::auto) knob tuner.
//!
//! The pipeline's performance knobs — worker count, records-per-chunk,
//! fused channel capacity — are all **output-invariant**: they trade
//! memory and wall clock, never results. That makes tuning safe to
//! automate, and this module is the policy:
//!
//! * **workers** — always all cores (`tt_par::set_threads(0)`, applied by
//!   the pipeline before loading); with bit-identical outputs there is
//!   nothing to hold back for.
//! * **chunk size** — scales with the input, [`CHUNK_DIVISOR`] chunks per
//!   run clamped to `[`[`MIN_CHUNK`]`, `[`MAX_CHUNK`]`]`: enough chunks
//!   that stage pipelining and per-chunk fan-outs have parallelism to
//!   work with, large enough that per-chunk overhead stays negligible.
//! * **channel capacity** — decided from *observed* stage timings: a
//!   short **calibration prefix** of the input runs each stage
//!   materialised against [`snapshot`](tt_device::BlockDevice::snapshot)
//!   clones of the stage devices, a private
//!   [`FlightRecorder`] times them,
//!   and the prefix's stall ratios (how far each stage's busy time falls
//!   short of the slowest stage's) pick the bound. Balanced chains (max
//!   stall < [`STALL_THRESHOLD`]) get [`BALANCED_CAPACITY`] chunks of
//!   buffering — with no persistent bottleneck, depth absorbs the
//!   transient bursts that would otherwise stall neighbours. Imbalanced
//!   chains keep the default
//!   [`FUSED_CHANNEL_CHUNKS`]: every chunk
//!   queues at the bottleneck regardless, so extra depth would only
//!   spend memory in front of it.
//!
//! Calibration never perturbs the real run: the devices are snapshot
//! clones (chains whose devices cannot snapshot skip calibration and
//! keep the defaults), and the real devices see the workload exactly
//! once. `tt-cli --parallel auto` outputs are byte-compared against
//! `--parallel 1` in CI.

use std::time::Instant;

use tt_par::telemetry::FlightRecorder;
use tt_trace::Trace;

use crate::pipeline::{Stage, FUSED_CHANNEL_CHUNKS};

/// Records in the calibration prefix (capped by the input length).
pub const CALIBRATION_RECORDS: usize = 8192;

/// Inputs shorter than this skip calibration — the prefix would not be
/// representative, and the whole run is cheap anyway.
pub const MIN_CALIBRATION: usize = 512;

/// Target chunks per run for the tuned chunk size.
pub const CHUNK_DIVISOR: usize = 64;

/// Tuned chunk-size clamp bounds.
pub const MIN_CHUNK: usize = 4096;
/// See [`MIN_CHUNK`].
pub const MAX_CHUNK: usize = 65536;

/// Channel capacity for balanced chains (in chunks).
pub const BALANCED_CAPACITY: usize = 8;

/// A chain is "balanced" when no stage's calibration stall ratio reaches
/// this fraction of the slowest stage's busy time.
pub const STALL_THRESHOLD: f64 = 0.33;

/// What the tuner picked. The pipeline applies each field only when the
/// caller left the corresponding knob untouched.
pub(crate) struct AutoPlan {
    /// Records per streamed chunk.
    pub(crate) chunk: usize,
    /// Fused stage-boundary channel capacity, in chunks.
    pub(crate) capacity: usize,
}

/// Tunes the knobs for `trace` flowing through `stages` (see the module
/// docs for the policy). `chunk` is the chunk size calibration itself
/// streams with — the caller's setting, so calibration matches the real
/// run's granularity as closely as possible.
pub(crate) fn plan(trace: &Trace, stages: &[Stage<'_>], chunk: usize) -> AutoPlan {
    AutoPlan {
        chunk: tuned_chunk(trace.len()),
        capacity: calibrate_capacity(trace, stages, chunk).unwrap_or(FUSED_CHANNEL_CHUNKS),
    }
}

/// The input-scaled chunk size: `len / CHUNK_DIVISOR`, clamped.
#[must_use]
pub fn tuned_chunk(len: usize) -> usize {
    (len / CHUNK_DIVISOR).clamp(MIN_CHUNK, MAX_CHUNK)
}

/// Runs the calibration prefix through the stages on snapshot devices and
/// picks the channel capacity from the observed stall ratios. `None` when
/// calibration does not apply (fewer than two stages — no boundary to
/// tune — a too-short input, or a device without the snapshot contract).
fn calibrate_capacity(trace: &Trace, stages: &[Stage<'_>], chunk: usize) -> Option<usize> {
    if stages.len() < 2 || trace.len() < MIN_CALIBRATION {
        return None;
    }
    let n = trace.len().min(CALIBRATION_RECORDS);
    let prefix = Trace::from_records(trace.meta().clone(), trace.records()[..n].to_vec());

    // Time each stage sequentially on the prefix — materialised, so each
    // stage's busy time is isolated from channel effects — into a private
    // recorder; the *relative* busy times are the signal.
    let recorder = FlightRecorder::new();
    recorder.begin();
    let mut current = prefix;
    for (i, stage) in stages.iter().enumerate() {
        let mut device = stage.snapshot_device()?;
        let started = Instant::now();
        current = stage
            .run_calibration(&current, device.as_mut(), chunk)
            .ok()?;
        recorder.record_stage(
            i,
            stage.label(),
            started.elapsed(),
            current.len(),
            None,
            None,
        );
    }
    recorder.finish();

    let log = recorder.flight_log();
    let max_busy = log.stages.iter().map(|s| s.busy).max()?;
    if max_busy.is_zero() {
        // Too fast to measure: any capacity works; keep the default.
        return Some(FUSED_CHANNEL_CHUNKS);
    }
    let max_stall = log
        .stages
        .iter()
        .map(|s| 1.0 - s.busy.as_secs_f64() / max_busy.as_secs_f64())
        .fold(0.0_f64, f64::max);
    Some(if max_stall < STALL_THRESHOLD {
        BALANCED_CAPACITY
    } else {
        FUSED_CHANNEL_CHUNKS
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pipeline;
    use tt_core::TraceTracker;
    use tt_device::presets;
    use tt_sim::StreamReplay;
    use tt_workloads::{catalog, generate_session};

    fn old_trace(n: usize, seed: u64) -> Trace {
        let entry = catalog::find("MSNFS").unwrap();
        let session = generate_session("MSNFS", &entry.profile, n, seed);
        let mut node = presets::enterprise_hdd_2007();
        session.materialize(&mut node, false).trace
    }

    #[test]
    fn tuned_chunk_scales_and_clamps() {
        assert_eq!(tuned_chunk(0), MIN_CHUNK);
        assert_eq!(tuned_chunk(100), MIN_CHUNK);
        assert_eq!(tuned_chunk(MIN_CHUNK * CHUNK_DIVISOR * 2), MIN_CHUNK * 2);
        assert_eq!(tuned_chunk(usize::MAX / 2), MAX_CHUNK);
    }

    #[test]
    fn auto_output_is_bit_identical_to_fixed_knobs() {
        let old = old_trace(1200, 21);
        let mut d1 = presets::intel_750_array();
        let mut r1 = presets::intel_750_array();
        let fixed = Pipeline::from_trace_ref(&old)
            .parallel(1)
            .reconstruct(&mut d1, TraceTracker::new())
            .replay(&mut r1, StreamReplay::ClosedLoop)
            .collect()
            .unwrap();
        let mut d2 = presets::intel_750_array();
        let mut r2 = presets::intel_750_array();
        let auto = Pipeline::from_trace_ref(&old)
            .auto()
            .reconstruct(&mut d2, TraceTracker::new())
            .replay(&mut r2, StreamReplay::ClosedLoop)
            .collect()
            .unwrap();
        tt_par::set_threads(0);
        assert_eq!(auto, fixed);
    }

    #[test]
    fn auto_respects_explicit_knobs() {
        // chunk_size() pins the chunk; auto() must leave it alone. The
        // recorder's knob stamp is the observable.
        let old = old_trace(1000, 22);
        let recorder = std::sync::Arc::new(FlightRecorder::new());
        let mut d = presets::intel_750_array();
        let mut r = presets::intel_750_array();
        Pipeline::from_trace_ref(&old)
            .auto()
            .chunk_size(77)
            .channel_capacity(3)
            .reconstruct(&mut d, TraceTracker::new())
            .replay(&mut r, StreamReplay::ClosedLoop)
            .flight_recorder(&recorder)
            .collect()
            .unwrap();
        tt_par::set_threads(0);
        let log = recorder.flight_log();
        assert_eq!(log.chunk_size, 77);
        assert_eq!(log.channel_capacity, 3);
    }

    #[test]
    fn auto_tunes_untouched_knobs() {
        let old = old_trace(1000, 23);
        let recorder = std::sync::Arc::new(FlightRecorder::new());
        let mut d = presets::intel_750_array();
        let mut r = presets::intel_750_array();
        Pipeline::from_trace_ref(&old)
            .auto()
            .reconstruct(&mut d, TraceTracker::new())
            .replay(&mut r, StreamReplay::ClosedLoop)
            .flight_recorder(&recorder)
            .collect()
            .unwrap();
        tt_par::set_threads(0);
        let log = recorder.flight_log();
        assert_eq!(log.chunk_size, tuned_chunk(old.len()));
        assert!(
            log.channel_capacity == BALANCED_CAPACITY
                || log.channel_capacity == FUSED_CHANNEL_CHUNKS,
            "capacity {} is not a tuner outcome",
            log.channel_capacity
        );
    }
}
